//! Lustre performance model.
//!
//! Models the paper's Lustre scratch file system: metadata is served by
//! an MDS, file data is striped over OSTs, and aggregate bandwidth
//! scales with the stripe width actually exercised. The property that
//! reproduces Table IIa's collective-vs-independent inversion is
//! *extent-lock contention*: when many clients write a shared file with
//! unaligned, interleaved extents, each OST serializes conflicting lock
//! grants, so independent MPI-IO (428.18 s in the paper) loses to
//! collective, stripe-aligned two-phase I/O (249.97 s).

use crate::model::{transfer_secs, CacheState, FsKind, MetaKind, OpCtx, PerfModel, XferKind, MIB};
use iosim_time::SimDuration;

/// Tunable parameters of the Lustre model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LustreParams {
    /// MDS request latency (seconds) for namespace operations.
    pub mds_latency_s: f64,
    /// Client-side cached operation latency (seconds).
    pub cached_op_latency_s: f64,
    /// Per-OST bandwidth (bytes/s).
    pub ost_bw: f64,
    /// Number of OSTs in the file system.
    pub ost_count: u32,
    /// Default stripe count for new files.
    pub stripe_count: u32,
    /// Stripe size (bytes); aligned accesses are multiples of this.
    pub stripe_size: u64,
    /// Per-client link bandwidth cap (bytes/s).
    pub client_bw: f64,
    /// Per-RPC latency for uncached data operations (seconds).
    pub rpc_latency_s: f64,
    /// Extra latency per conflicting extent-lock acquisition (seconds),
    /// paid by unaligned writes to a shared file.
    pub lock_latency_s: f64,
    /// Bandwidth penalty multiplier for unaligned shared-file writes.
    pub false_sharing_penalty: f64,
    /// Bandwidth penalty when many more clients than
    /// `many_clients_threshold` hammer a shared file concurrently (OST
    /// seek storms and LDLM traffic) — the reason independent MPI-IO
    /// loses to collective on Lustre in Table IIa.
    pub many_clients_penalty: f64,
    /// Client count beyond which [`Self::many_clients_penalty`]
    /// applies.
    pub many_clients_threshold: u32,
    /// Client cache bandwidth (bytes/s) for cached operations.
    pub cache_bw: f64,
}

impl Default for LustreParams {
    /// Defaults sized to a small Cray-attached Lustre (a handful of
    /// OSTs), matching the ≈450 MB/s aggregate implied by Table IIa.
    fn default() -> Self {
        Self {
            mds_latency_s: 0.35e-3,
            cached_op_latency_s: 6e-6,
            ost_bw: 160.0 * MIB,
            ost_count: 8,
            stripe_count: 4,
            stripe_size: 1024 * 1024,
            client_bw: 1200.0 * MIB,
            rpc_latency_s: 0.25e-3,
            lock_latency_s: 0.9e-3,
            false_sharing_penalty: 1.55,
            many_clients_penalty: 1.8,
            many_clients_threshold: 32,
            cache_bw: 8.0e9,
        }
    }
}

/// The Lustre model.
#[derive(Debug, Clone)]
pub struct LustreModel {
    params: LustreParams,
}

impl LustreModel {
    /// Creates the model with the given parameters.
    pub fn new(params: LustreParams) -> Self {
        Self { params }
    }

    /// Access to the parameters (used by calibration tooling).
    pub fn params(&self) -> &LustreParams {
        &self.params
    }

    /// Effective per-client bandwidth: the client's share of the OSTs
    /// its file stripes over, capped by its link.
    fn shared_bw(&self, clients: u32) -> f64 {
        let p = &self.params;
        // Clients spread across all OSTs; a single file sees its
        // stripe_count's worth, the population shares ost_count's worth.
        let aggregate = p.ost_bw * p.ost_count.min(p.stripe_count * clients) as f64;
        (aggregate / clients.max(1) as f64).min(p.client_bw)
    }
}

impl Default for LustreModel {
    fn default() -> Self {
        Self::new(LustreParams::default())
    }
}

impl PerfModel for LustreModel {
    fn kind(&self) -> FsKind {
        FsKind::Lustre
    }

    fn meta_op(&self, kind: MetaKind, ctx: &OpCtx) -> SimDuration {
        let p = &self.params;
        let base = match kind {
            // open = MDS lookup + layout fetch
            MetaKind::Open => p.mds_latency_s * 2.0,
            MetaKind::Close => p.mds_latency_s,
            // flush commits dirty extents on each stripe's OST
            MetaKind::Flush => p.mds_latency_s + p.rpc_latency_s * p.stripe_count as f64,
            MetaKind::Stat => p.mds_latency_s,
        };
        SimDuration::from_secs_f64(base * ctx.load_factor * ctx.jitter)
    }

    fn transfer(&self, kind: XferKind, bytes: u64, ctx: &OpCtx) -> SimDuration {
        let p = &self.params;
        match ctx.cached {
            CacheState::PageCache => {
                // Valid extent lock: the client's pages are
                // authoritative; no server round trip.
                let secs = p.cached_op_latency_s + transfer_secs(bytes, p.cache_bw);
                return SimDuration::from_secs_f64(secs * ctx.load_factor * ctx.jitter);
            }
            CacheState::Readahead => {
                // Prefetched from the OSTs: cheap latency, OST bandwidth.
                let secs = p.cached_op_latency_s
                    + transfer_secs(bytes, self.shared_bw(ctx.active_clients));
                return SimDuration::from_secs_f64(secs * ctx.load_factor * ctx.jitter);
            }
            CacheState::Miss => {}
        }
        let mut latency = p.rpc_latency_s;
        let mut bw_secs = transfer_secs(bytes, self.shared_bw(ctx.active_clients));
        if kind == XferKind::Write && ctx.shared_file && !ctx.aligned {
            // Conflicting extent locks: extra lock round trips plus
            // serialized grants at the OSTs.
            let extents = (bytes / p.stripe_size).max(1) as f64;
            latency += p.lock_latency_s * extents.min(8.0);
            bw_secs *= p.false_sharing_penalty;
        }
        if ctx.shared_file && ctx.active_clients > p.many_clients_threshold {
            // Hundreds of clients interleaving extents on the same
            // OSTs: per-OST seek storms degrade streaming bandwidth.
            bw_secs *= p.many_clients_penalty;
        }
        SimDuration::from_secs_f64((latency + bw_secs) * ctx.load_factor * ctx.jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> OpCtx {
        OpCtx::neutral()
    }

    #[test]
    fn aggregate_bandwidth_scales_with_clients() {
        let m = LustreModel::default();
        // One client sees stripe_count OSTs; 8 clients saturate all
        // OSTs, so per-client time grows less than linearly.
        let solo = m.transfer(XferKind::Write, 64 * 1024 * 1024, &ctx());
        let mut crowded = ctx();
        crowded.active_clients = 8;
        let shared = m.transfer(XferKind::Write, 64 * 1024 * 1024, &crowded);
        let ratio = shared.as_secs_f64() / solo.as_secs_f64();
        assert!(ratio < 6.0, "Lustre should scale with OSTs, ratio {ratio}");
        assert!(
            ratio > 1.5,
            "but 8 clients on 8 OSTs still share, ratio {ratio}"
        );
    }

    #[test]
    fn lustre_beats_nfs_at_scale() {
        use crate::nfs::NfsModel;
        let lustre = LustreModel::default();
        let nfs = NfsModel::default();
        let mut many = ctx();
        many.active_clients = 352; // the paper's 22-node MPI-IO run
        let l = lustre.transfer(XferKind::Write, 16 * 1024 * 1024, &many);
        let n = nfs.transfer(XferKind::Write, 16 * 1024 * 1024, &many);
        assert!(
            n.as_secs_f64() / l.as_secs_f64() > 2.0,
            "NFS {n} should be much slower than Lustre {l} at 352 clients"
        );
    }

    #[test]
    fn unaligned_shared_writes_pay_lock_contention() {
        let m = LustreModel::default();
        let mut shared_unaligned = ctx();
        shared_unaligned.shared_file = true;
        shared_unaligned.aligned = false;
        let clean = m.transfer(XferKind::Write, 16 * 1024 * 1024, &ctx());
        let contended = m.transfer(XferKind::Write, 16 * 1024 * 1024, &shared_unaligned);
        assert!(contended.as_secs_f64() > clean.as_secs_f64() * 1.3);
    }

    #[test]
    fn reads_do_not_pay_write_lock_contention() {
        let m = LustreModel::default();
        let mut shared_unaligned = ctx();
        shared_unaligned.shared_file = true;
        shared_unaligned.aligned = false;
        let r1 = m.transfer(XferKind::Read, 16 * 1024 * 1024, &ctx());
        let r2 = m.transfer(XferKind::Read, 16 * 1024 * 1024, &shared_unaligned);
        assert_eq!(r1, r2);
    }

    #[test]
    fn many_clients_on_shared_file_pay_seek_storms() {
        let m = LustreModel::default();
        let mut few = ctx();
        few.shared_file = true;
        few.active_clients = 22; // collective aggregators: under threshold
        let mut many = few;
        many.active_clients = 352; // independent: every rank hits the OSTs
        let t_few = m.transfer(XferKind::Write, 16 * 1024 * 1024, &few);
        let t_many = m.transfer(XferKind::Write, 16 * 1024 * 1024, &many);
        // 16x the clients, but with the seek-storm penalty the slowdown
        // exceeds pure bandwidth sharing (both see all 8 OSTs).
        let pure_sharing = 352.0 / 22.0;
        let ratio = t_many.as_secs_f64() / t_few.as_secs_f64();
        assert!(ratio > pure_sharing * 1.4, "ratio {ratio}");
    }

    #[test]
    fn metadata_faster_than_nfs() {
        use crate::nfs::NfsModel;
        let l = LustreModel::default().meta_op(MetaKind::Open, &ctx());
        let n = NfsModel::default().meta_op(MetaKind::Open, &ctx());
        assert!(l < n);
    }
}
