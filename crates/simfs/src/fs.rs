//! The `SimFs` facade: namespace + performance model + weather.
//!
//! This is the layer the Darshan module wrappers call. Every operation
//! takes the calling rank's [`IoCtx`], computes a duration from the
//! performance model under the current weather, advances the rank's
//! virtual clock, updates traffic accounting, and returns an
//! [`OpTiming`] carrying the start/end [`TimePair`]s that Darshan's DXT
//! tracing and the connector's `seg:timestamp` field consume.

use crate::ctx::IoCtx;
use crate::error::{FsError, FsResult};
use crate::model::{CacheState, MetaKind, OpCtx, PerfModel, XferKind};
use crate::stats::{FsStats, FsStatsSnapshot};
use crate::vfs::{FileId, FileMeta, FileStore};
use crate::weather::Weather;
use iosim_time::{SimDuration, TimePair};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// How far ahead of the last access the client cache covers (bytes).
/// Sequential accesses within this window are "cached" for the model.
const READAHEAD_BYTES: u64 = 4 * 1024 * 1024;

/// Timing of one completed operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpTiming {
    /// Clock state when the operation was issued.
    pub start: TimePair,
    /// Clock state when the operation completed.
    pub end: TimePair,
    /// Modelled duration (`end - start`).
    pub duration: SimDuration,
    /// Bytes actually transferred (reads clamp at end-of-file).
    pub bytes: u64,
}

/// An open file handle, private to one rank.
///
/// Tracks the sequential-access window used for cache-hit detection and
/// a cursor for the sequential (`read`/`write`) convenience API.
#[derive(Debug)]
pub struct FileHandle {
    fid: FileId,
    path: Arc<str>,
    meta: Arc<FileMeta>,
    writable: bool,
    /// Cursor for sequential read/write.
    cursor: u64,
    /// End of the most recent access, for readahead detection.
    last_end: Option<u64>,
    /// Extent written through this handle: `[written_min, written_max)`.
    /// Reads inside it hit the client page cache (own dirty/clean
    /// pages). Dropped with the handle — close-to-open consistency, so
    /// a re-opened file reads from the server again (which is why
    /// HACC-IO's validation pass is slow while MPI-IO-TEST's same-handle
    /// read-back is fast).
    written_min: u64,
    written_max: u64,
    /// Whether this handle's file is opened by many ranks at once.
    shared: bool,
    closed: bool,
}

impl FileHandle {
    /// The path this handle refers to.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The store-level file id.
    pub fn file_id(&self) -> FileId {
        self.fid
    }

    /// Current sequential cursor position.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Repositions the sequential cursor (`lseek` analogue); resets the
    /// readahead window because the access pattern broke.
    pub fn seek(&mut self, offset: u64) {
        self.cursor = offset;
        self.last_end = None;
    }

    /// Current file size as known to the store.
    pub fn size(&self) -> u64 {
        self.meta.size.load(Ordering::Relaxed)
    }

    fn ensure_open(&self) -> FsResult<()> {
        if self.closed {
            Err(FsError::StaleHandle(self.path.to_string()))
        } else {
            Ok(())
        }
    }

    fn cache_hit(&mut self, offset: u64) -> bool {
        match self.last_end {
            Some(end) => offset >= end && offset - end < READAHEAD_BYTES,
            None => false,
        }
    }

    fn in_written_extent(&self, offset: u64, len: u64) -> bool {
        self.written_max > self.written_min
            && offset >= self.written_min
            && offset.saturating_add(len) <= self.written_max
    }
}

struct Shared {
    store: FileStore,
    model: Box<dyn PerfModel>,
    weather: Weather,
    stats: FsStats,
    active_clients: AtomicU32,
    /// Failure-injection flag for tests: next data op fails when set.
    fail_next: AtomicBool,
    /// Natural alignment boundary for this file system.
    alignment: u64,
}

/// A simulated file system shared by all ranks of a job (cheaply
/// cloneable; clones share state).
#[derive(Clone)]
pub struct SimFs {
    inner: Arc<Shared>,
}

impl SimFs {
    /// Creates a file system from a performance model and weather, with
    /// the given natural alignment (stripe size for Lustre, wsize for
    /// NFS).
    pub fn new(model: Box<dyn PerfModel>, weather: Weather, alignment: u64) -> Self {
        Self {
            inner: Arc::new(Shared {
                store: FileStore::new(),
                model,
                weather,
                stats: FsStats::default(),
                active_clients: AtomicU32::new(1),
                fail_next: AtomicBool::new(false),
                alignment: alignment.max(1),
            }),
        }
    }

    /// Registers how many clients (ranks) actively share this file
    /// system; the models divide server bandwidth by this.
    pub fn set_active_clients(&self, n: u32) {
        self.inner.active_clients.store(n.max(1), Ordering::Relaxed);
    }

    /// The configured client count.
    pub fn active_clients(&self) -> u32 {
        self.inner.active_clients.load(Ordering::Relaxed)
    }

    /// The display name of the underlying model ("NFS"/"Lustre").
    pub fn kind_name(&self) -> &'static str {
        self.inner.model.kind().name()
    }

    /// Snapshot of cumulative traffic counters.
    pub fn stats(&self) -> FsStatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// True when `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.inner.store.exists(path)
    }

    /// Size of `path` if it exists.
    pub fn size_of(&self, path: &str) -> FsResult<u64> {
        self.inner.store.size_of(path)
    }

    /// Arms a one-shot injected failure: the next read/write returns
    /// `FsError::Injected`. For failure-injection tests.
    pub fn inject_failure(&self) {
        self.inner.fail_next.store(true, Ordering::SeqCst);
    }

    fn op_ctx(
        &self,
        ctx: &mut IoCtx,
        offset: u64,
        bytes: u64,
        shared: bool,
        cached: CacheState,
    ) -> OpCtx {
        let align = self.inner.alignment;
        OpCtx {
            active_clients: ctx
                .concurrency_override
                .unwrap_or_else(|| self.active_clients()),
            load_factor: self.inner.weather.factor_at(ctx.clock.now()),
            jitter: ctx.jitter_factor(),
            aligned: offset % align == 0 && (bytes % align == 0 || bytes >= align),
            shared_file: shared,
            cached,
        }
    }

    fn timed<F>(&self, ctx: &mut IoCtx, bytes: u64, f: F) -> OpTiming
    where
        F: FnOnce(&Self) -> SimDuration,
    {
        let start = ctx.clock.time_pair();
        let d = f(self);
        ctx.clock.advance(d);
        OpTiming {
            start,
            end: ctx.clock.time_pair(),
            duration: d,
            bytes,
        }
    }

    /// Opens (optionally creating) a file. `shared` marks the file as
    /// concurrently accessed by many ranks (single-shared-file I/O),
    /// which Lustre penalizes for unaligned writes.
    pub fn open(
        &self,
        ctx: &mut IoCtx,
        path: &str,
        create: bool,
        writable: bool,
        shared: bool,
    ) -> FsResult<(FileHandle, OpTiming)> {
        let (fid, meta) = self.inner.store.open(path, create)?;
        self.inner.stats.opens.fetch_add(1, Ordering::Relaxed);
        let opctx = self.op_ctx(ctx, 0, 0, shared, CacheState::Miss);
        let timing = self.timed(ctx, 0, |fs| fs.inner.model.meta_op(MetaKind::Open, &opctx));
        Ok((
            FileHandle {
                fid,
                path: Arc::from(path),
                meta,
                writable,
                cursor: 0,
                last_end: None,
                written_min: 0,
                written_max: 0,
                shared,
                closed: false,
            },
            timing,
        ))
    }

    /// Writes `len` bytes at `offset`.
    pub fn write_at(
        &self,
        ctx: &mut IoCtx,
        h: &mut FileHandle,
        offset: u64,
        len: u64,
    ) -> FsResult<OpTiming> {
        h.ensure_open()?;
        if !h.writable {
            return Err(FsError::ReadOnly(h.path.to_string()));
        }
        if self.inner.fail_next.swap(false, Ordering::SeqCst) {
            return Err(FsError::Injected(format!("write {}", h.path)));
        }
        // Small sequential writes land in the client's write-behind
        // buffer; large or non-sequential ones go to the server. An
        // active storm (memory pressure) defeats the buffering.
        let storm = self.inner.weather.caches_dropped_at(ctx.clock.now());
        let cached = if !storm && h.cache_hit(offset) && len < self.inner.alignment {
            CacheState::PageCache
        } else {
            CacheState::Miss
        };
        let opctx = self.op_ctx(ctx, offset, len, h.shared, cached);
        let timing = self.timed(ctx, len, |fs| {
            fs.inner.model.transfer(XferKind::Write, len, &opctx)
        });
        FileStore::extend(&h.meta, offset, len);
        h.last_end = Some(offset + len);
        if h.written_max == h.written_min {
            h.written_min = offset;
            h.written_max = offset + len;
        } else {
            h.written_min = h.written_min.min(offset);
            h.written_max = h.written_max.max(offset + len);
        }
        self.inner.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .bytes_written
            .fetch_add(len, Ordering::Relaxed);
        Ok(timing)
    }

    /// Reads up to `len` bytes at `offset`; the returned timing's
    /// `bytes` is clamped to the available extent. Reading entirely past
    /// end-of-file is an error.
    pub fn read_at(
        &self,
        ctx: &mut IoCtx,
        h: &mut FileHandle,
        offset: u64,
        len: u64,
    ) -> FsResult<OpTiming> {
        h.ensure_open()?;
        if self.inner.fail_next.swap(false, Ordering::SeqCst) {
            return Err(FsError::Injected(format!("read {}", h.path)));
        }
        let size = h.size();
        if offset >= size && len > 0 {
            return Err(FsError::BeyondEof {
                path: h.path.to_string(),
                offset,
                size,
            });
        }
        let avail = (size - offset).min(len);
        let storm = self.inner.weather.caches_dropped_at(ctx.clock.now());
        let cached = if storm {
            CacheState::Miss
        } else if self.inner.model.caches_own_writes() && h.in_written_extent(offset, avail) {
            CacheState::PageCache
        } else if h.cache_hit(offset) {
            CacheState::Readahead
        } else {
            CacheState::Miss
        };
        let opctx = self.op_ctx(ctx, offset, avail, h.shared, cached);
        let timing = self.timed(ctx, avail, |fs| {
            fs.inner.model.transfer(XferKind::Read, avail, &opctx)
        });
        h.last_end = Some(offset + avail);
        self.inner.stats.reads.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .bytes_read
            .fetch_add(avail, Ordering::Relaxed);
        Ok(timing)
    }

    /// Sequential write at the handle cursor.
    pub fn write(&self, ctx: &mut IoCtx, h: &mut FileHandle, len: u64) -> FsResult<OpTiming> {
        let off = h.cursor;
        let t = self.write_at(ctx, h, off, len)?;
        h.cursor = off + len;
        Ok(t)
    }

    /// Sequential read at the handle cursor.
    pub fn read(&self, ctx: &mut IoCtx, h: &mut FileHandle, len: u64) -> FsResult<OpTiming> {
        let off = h.cursor;
        let t = self.read_at(ctx, h, off, len)?;
        h.cursor = off + t.bytes;
        Ok(t)
    }

    /// Flushes dirty state for the handle.
    pub fn flush(&self, ctx: &mut IoCtx, h: &mut FileHandle) -> FsResult<OpTiming> {
        h.ensure_open()?;
        let opctx = self.op_ctx(ctx, 0, 0, h.shared, CacheState::Miss);
        self.inner.stats.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(self.timed(ctx, 0, |fs| fs.inner.model.meta_op(MetaKind::Flush, &opctx)))
    }

    /// Closes the handle. Further operations on it fail.
    pub fn close(&self, ctx: &mut IoCtx, h: &mut FileHandle) -> FsResult<OpTiming> {
        h.ensure_open()?;
        h.closed = true;
        let opctx = self.op_ctx(ctx, 0, 0, h.shared, CacheState::Miss);
        self.inner.stats.closes.fetch_add(1, Ordering::Relaxed);
        Ok(self.timed(ctx, 0, |fs| fs.inner.model.meta_op(MetaKind::Close, &opctx)))
    }

    /// Removes a file from the namespace.
    pub fn unlink(&self, path: &str) -> FsResult<()> {
        self.inner.store.unlink(path)
    }
}

impl std::fmt::Debug for SimFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimFs")
            .field("kind", &self.kind_name())
            .field("active_clients", &self.active_clients())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lustre::LustreModel;
    use crate::nfs::NfsModel;
    use iosim_time::Epoch;

    fn nfs() -> SimFs {
        SimFs::new(Box::<NfsModel>::default(), Weather::calm(), 1024 * 1024)
    }

    fn ioctx() -> IoCtx {
        IoCtx::new(42, 0, 0, Epoch::from_secs(1_650_000_000)).with_jitter(0.0)
    }

    #[test]
    fn open_write_read_close_advances_clock() {
        let fs = nfs();
        let mut ctx = ioctx();
        let (mut h, t_open) = fs.open(&mut ctx, "/f", true, true, false).unwrap();
        assert!(t_open.duration > SimDuration::ZERO);
        let t_w = fs.write_at(&mut ctx, &mut h, 0, 1024 * 1024).unwrap();
        assert_eq!(t_w.bytes, 1024 * 1024);
        let t_r = fs.read_at(&mut ctx, &mut h, 0, 1024 * 1024).unwrap();
        assert_eq!(t_r.bytes, 1024 * 1024);
        let t_c = fs.close(&mut ctx, &mut h).unwrap();
        // Monotone timeline.
        assert!(t_open.end.abs <= t_w.start.abs);
        assert!(t_w.end.abs <= t_r.start.abs);
        assert!(t_r.end.abs <= t_c.start.abs);
        assert!(ctx.clock.elapsed() > SimDuration::ZERO);
    }

    #[test]
    fn read_clamps_at_eof() {
        let fs = nfs();
        let mut ctx = ioctx();
        let (mut h, _) = fs.open(&mut ctx, "/f", true, true, false).unwrap();
        fs.write_at(&mut ctx, &mut h, 0, 100).unwrap();
        let t = fs.read_at(&mut ctx, &mut h, 50, 1000).unwrap();
        assert_eq!(t.bytes, 50);
        let err = fs.read_at(&mut ctx, &mut h, 100, 10).unwrap_err();
        assert!(matches!(err, FsError::BeyondEof { .. }));
    }

    #[test]
    fn sequential_api_moves_cursor() {
        let fs = nfs();
        let mut ctx = ioctx();
        let (mut h, _) = fs.open(&mut ctx, "/seq", true, true, false).unwrap();
        fs.write(&mut ctx, &mut h, 10).unwrap();
        fs.write(&mut ctx, &mut h, 10).unwrap();
        assert_eq!(h.cursor(), 20);
        assert_eq!(h.size(), 20);
        h.seek(0);
        let t = fs.read(&mut ctx, &mut h, 20).unwrap();
        assert_eq!(t.bytes, 20);
        assert_eq!(h.cursor(), 20);
    }

    #[test]
    fn closed_handle_rejects_ops() {
        let fs = nfs();
        let mut ctx = ioctx();
        let (mut h, _) = fs.open(&mut ctx, "/c", true, true, false).unwrap();
        fs.close(&mut ctx, &mut h).unwrap();
        assert!(matches!(
            fs.write_at(&mut ctx, &mut h, 0, 1),
            Err(FsError::StaleHandle(_))
        ));
        assert!(matches!(
            fs.close(&mut ctx, &mut h),
            Err(FsError::StaleHandle(_))
        ));
    }

    #[test]
    fn readonly_handle_rejects_writes() {
        let fs = nfs();
        let mut ctx = ioctx();
        let (mut h, _) = fs.open(&mut ctx, "/ro", true, true, false).unwrap();
        fs.write_at(&mut ctx, &mut h, 0, 10).unwrap();
        fs.close(&mut ctx, &mut h).unwrap();
        let (mut ro, _) = fs.open(&mut ctx, "/ro", false, false, false).unwrap();
        assert!(matches!(
            fs.write_at(&mut ctx, &mut ro, 0, 1),
            Err(FsError::ReadOnly(_))
        ));
    }

    /// Writes a file and reopens it read-only, so the written-extent
    /// cache of the writing handle is dropped (close-to-open
    /// consistency) and only readahead caching applies.
    fn reopened(fs: &SimFs, ctx: &mut IoCtx, path: &str, bytes: u64) -> FileHandle {
        let (mut h, _) = fs.open(ctx, path, true, true, false).unwrap();
        fs.write_at(ctx, &mut h, 0, bytes).unwrap();
        fs.close(ctx, &mut h).unwrap();
        fs.open(ctx, path, false, false, false).unwrap().0
    }

    #[test]
    fn sequential_small_reads_become_cached() {
        let fs = nfs();
        let mut ctx = ioctx();
        let mut h = reopened(&fs, &mut ctx, "/cache", 8 * 1024 * 1024);
        // First read pays the RPC; subsequent sequential reads hit the
        // readahead window and are much cheaper.
        let first = fs.read(&mut ctx, &mut h, 4096).unwrap();
        let second = fs.read(&mut ctx, &mut h, 4096).unwrap();
        assert!(second.duration.as_secs_f64() < first.duration.as_secs_f64() / 5.0);
    }

    #[test]
    fn seek_resets_cache_window() {
        let fs = nfs();
        let mut ctx = ioctx();
        let mut h = reopened(&fs, &mut ctx, "/cache2", 8 * 1024 * 1024);
        fs.read(&mut ctx, &mut h, 4096).unwrap();
        let cached = fs.read(&mut ctx, &mut h, 4096).unwrap();
        h.seek(4 * 1024 * 1024 + 8192);
        let after_seek = fs.read(&mut ctx, &mut h, 4096).unwrap();
        assert!(after_seek.duration > cached.duration);
    }

    #[test]
    fn same_handle_read_back_hits_page_cache() {
        // Lustre caches a client's own writes; NFS (actimeo=0) must not.
        let fs = SimFs::new(Box::<LustreModel>::default(), Weather::calm(), 1024 * 1024);
        let mut ctx = ioctx();
        let (mut h, _) = fs.open(&mut ctx, "/own", true, true, false).unwrap();
        fs.write_at(&mut ctx, &mut h, 0, 16 * 1024 * 1024).unwrap();
        // Reading back data this handle wrote: client page cache.
        let hit = fs.read_at(&mut ctx, &mut h, 0, 16 * 1024 * 1024).unwrap();
        assert!(hit.duration.as_secs_f64() < 0.05, "got {}", hit.duration);
        // A different (reopened) handle pays the server round trip.
        fs.close(&mut ctx, &mut h).unwrap();
        let (mut h2, _) = fs.open(&mut ctx, "/own", false, false, false).unwrap();
        let miss = fs.read_at(&mut ctx, &mut h2, 0, 16 * 1024 * 1024).unwrap();
        assert!(miss.duration.as_secs_f64() > hit.duration.as_secs_f64() * 5.0);
    }

    #[test]
    fn nfs_actimeo_zero_rereads_even_own_writes() {
        let fs = nfs();
        let mut ctx = ioctx();
        let (mut h, _) = fs.open(&mut ctx, "/own-nfs", true, true, false).unwrap();
        fs.write_at(&mut ctx, &mut h, 0, 16 * 1024 * 1024).unwrap();
        let read_back = fs.read_at(&mut ctx, &mut h, 0, 16 * 1024 * 1024).unwrap();
        // Pays the server round trip + bandwidth, not the page cache.
        assert!(
            read_back.duration.as_secs_f64() > 0.05,
            "got {}",
            read_back.duration
        );
    }

    #[test]
    fn stats_accumulate() {
        let fs = nfs();
        let mut ctx = ioctx();
        let (mut h, _) = fs.open(&mut ctx, "/s", true, true, false).unwrap();
        fs.write_at(&mut ctx, &mut h, 0, 100).unwrap();
        fs.write_at(&mut ctx, &mut h, 100, 100).unwrap();
        fs.read_at(&mut ctx, &mut h, 0, 150).unwrap();
        fs.flush(&mut ctx, &mut h).unwrap();
        fs.close(&mut ctx, &mut h).unwrap();
        let s = fs.stats();
        assert_eq!(s.opens, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.closes, 1);
        assert_eq!(s.bytes_written, 200);
        assert_eq!(s.bytes_read, 150);
    }

    #[test]
    fn injected_failure_fires_once() {
        let fs = nfs();
        let mut ctx = ioctx();
        let (mut h, _) = fs.open(&mut ctx, "/inj", true, true, false).unwrap();
        fs.inject_failure();
        assert!(matches!(
            fs.write_at(&mut ctx, &mut h, 0, 1),
            Err(FsError::Injected(_))
        ));
        assert!(fs.write_at(&mut ctx, &mut h, 0, 1).is_ok());
    }

    #[test]
    fn lustre_fs_smoke() {
        let fs = SimFs::new(Box::<LustreModel>::default(), Weather::calm(), 1024 * 1024);
        fs.set_active_clients(64);
        let mut ctx = ioctx();
        let (mut h, _) = fs.open(&mut ctx, "/l", true, true, true).unwrap();
        let t = fs.write_at(&mut ctx, &mut h, 12345, 4096).unwrap(); // unaligned shared
        assert!(t.duration > SimDuration::ZERO);
        assert_eq!(fs.kind_name(), "Lustre");
    }
}
