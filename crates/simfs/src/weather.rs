//! Background file-system load ("weather").
//!
//! Table II's negative overheads happen because the Darshan-only
//! baseline campaign ran 1–2 weeks before the connector campaign, under
//! different file-system load. This module reproduces that mechanism: a
//! seeded campaign-level load factor, a diurnal (time-of-day) component
//! — the paper explicitly lists "time of the day being used" as a
//! variability source — and explicit congestion windows used to inject
//! the anomalous `job_id 2` of Figures 7–9.

use iosim_time::Epoch;
use std::f64::consts::TAU;

/// A transient congestion event: while `t` is inside the window, all
/// operation durations are multiplied by `factor`, and optionally the
/// client caches stop being effective (`drops_caches`) — a storm is
/// both server congestion and client memory pressure, and the latter is
/// what turns millisecond cached reads into multi-second server reads
/// (the paper's anomalous job 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionWindow {
    /// Window start (absolute time).
    pub start: Epoch,
    /// Window end (absolute time).
    pub end: Epoch,
    /// Slowdown multiplier (> 1 slows the file system down).
    pub factor: f64,
    /// While active, client cache hits are treated as misses.
    pub drops_caches: bool,
}

impl CongestionWindow {
    /// A pure-slowdown window.
    pub fn slowdown(start: Epoch, end: Epoch, factor: f64) -> Self {
        Self {
            start,
            end,
            factor,
            drops_caches: false,
        }
    }

    /// A storm: slowdown plus cache-defeating memory pressure.
    pub fn storm(start: Epoch, end: Epoch, factor: f64) -> Self {
        Self {
            start,
            end,
            factor,
            drops_caches: true,
        }
    }

    /// True when `t` falls inside the window.
    pub fn contains(&self, t: Epoch) -> bool {
        t >= self.start && t < self.end
    }
}

/// Parameters of the weather model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeatherParams {
    /// Baseline multiplier for this measurement campaign (1.0 = nominal;
    /// the Darshan-only and connector campaigns get different values
    /// derived from their seeds).
    pub campaign_load: f64,
    /// Amplitude of the diurnal sinusoid (0 disables it).
    pub diurnal_amplitude: f64,
    /// Phase offset of the diurnal sinusoid in seconds-of-day.
    pub diurnal_phase_s: f64,
}

impl Default for WeatherParams {
    fn default() -> Self {
        Self {
            campaign_load: 1.0,
            diurnal_amplitude: 0.15,
            diurnal_phase_s: 0.0,
        }
    }
}

impl WeatherParams {
    /// Derives campaign parameters from a seed, spreading campaigns over
    /// roughly ±8% of nominal load — enough that an uninstrumented
    /// baseline can lose to (or beat) an instrumented run measured weeks
    /// later, as in the paper's sign-mixed overheads.
    pub fn from_campaign_seed(seed: u64) -> Self {
        // Two independent unit draws via splitmix-style mixing.
        let mix = |x: u64| {
            let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let u1 = (mix(seed) >> 11) as f64 / (1u64 << 53) as f64;
        let u2 = (mix(seed ^ 0xdeadbeef) >> 11) as f64 / (1u64 << 53) as f64;
        Self {
            campaign_load: 1.0 + (u1 - 0.5) * 0.16,
            diurnal_amplitude: 0.10 + u2 * 0.10,
            diurnal_phase_s: (mix(seed ^ 0x00c0_ffee) % 86_400) as f64,
        }
    }
}

/// The assembled weather model for one file system instance.
#[derive(Debug, Clone, Default)]
pub struct Weather {
    params: WeatherParams,
    windows: Vec<CongestionWindow>,
}

impl Weather {
    /// Creates a calm weather model (factor 1.0 everywhere).
    pub fn calm() -> Self {
        Self {
            params: WeatherParams {
                campaign_load: 1.0,
                diurnal_amplitude: 0.0,
                diurnal_phase_s: 0.0,
            },
            windows: Vec::new(),
        }
    }

    /// Creates a weather model from parameters.
    pub fn new(params: WeatherParams) -> Self {
        Self {
            params,
            windows: Vec::new(),
        }
    }

    /// Adds a congestion window.
    pub fn with_congestion(mut self, w: CongestionWindow) -> Self {
        self.windows.push(w);
        self
    }

    /// Registered congestion windows.
    pub fn windows(&self) -> &[CongestionWindow] {
        &self.windows
    }

    /// True when any active window at `t` defeats the client caches.
    pub fn caches_dropped_at(&self, t: Epoch) -> bool {
        self.windows.iter().any(|w| w.drops_caches && w.contains(t))
    }

    /// The slowdown factor at absolute time `t` (≥ some small positive
    /// floor; multiplies every modelled duration).
    pub fn factor_at(&self, t: Epoch) -> f64 {
        let diurnal = 1.0
            + self.params.diurnal_amplitude
                * (TAU * (t.seconds_of_day() - self.params.diurnal_phase_s) / 86_400.0).sin();
        let mut f = self.params.campaign_load * diurnal;
        for w in &self.windows {
            if w.contains(t) {
                f *= w.factor;
            }
        }
        f.max(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_weather_is_unity() {
        let w = Weather::calm();
        for s in [0u64, 1_000, 86_400, 1_650_000_000] {
            assert!((w.factor_at(Epoch::from_secs(s)) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diurnal_cycle_repeats_daily() {
        let w = Weather::new(WeatherParams::default());
        let a = w.factor_at(Epoch::from_secs(3_600));
        let b = w.factor_at(Epoch::from_secs(3_600 + 86_400));
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn congestion_window_applies_inside_only() {
        let w = Weather::calm().with_congestion(CongestionWindow::slowdown(
            Epoch::from_secs(100),
            Epoch::from_secs(200),
            10.0,
        ));
        assert!((w.factor_at(Epoch::from_secs(50)) - 1.0).abs() < 1e-9);
        assert!((w.factor_at(Epoch::from_secs(150)) - 10.0).abs() < 1e-9);
        assert!((w.factor_at(Epoch::from_secs(200)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn campaign_seeds_differ_but_stay_bounded() {
        let a = WeatherParams::from_campaign_seed(1);
        let b = WeatherParams::from_campaign_seed(2);
        assert_ne!(a.campaign_load, b.campaign_load);
        for p in [a, b] {
            assert!((0.8..=1.2).contains(&p.campaign_load));
            assert!((0.10..=0.20).contains(&p.diurnal_amplitude));
        }
    }

    #[test]
    fn storm_windows_drop_caches_inside_only() {
        let w = Weather::calm().with_congestion(CongestionWindow::storm(
            Epoch::from_secs(100),
            Epoch::from_secs(200),
            1.5,
        ));
        assert!(!w.caches_dropped_at(Epoch::from_secs(50)));
        assert!(w.caches_dropped_at(Epoch::from_secs(150)));
        assert!(!w.caches_dropped_at(Epoch::from_secs(250)));
        // Pure slowdowns never drop caches.
        let w2 = Weather::calm().with_congestion(CongestionWindow::slowdown(
            Epoch::from_secs(0),
            Epoch::from_secs(10),
            9.0,
        ));
        assert!(!w2.caches_dropped_at(Epoch::from_secs(5)));
    }

    #[test]
    fn factor_never_collapses_to_zero() {
        let w = Weather::calm().with_congestion(CongestionWindow::slowdown(
            Epoch::from_secs(0),
            Epoch::from_secs(10),
            0.0,
        ));
        assert!(w.factor_at(Epoch::from_secs(5)) >= 0.05);
    }
}
