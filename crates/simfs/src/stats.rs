//! Traffic accounting for a file-system instance.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative operation and byte counters, updated lock-free by all
/// rank threads.
#[derive(Debug, Default)]
pub struct FsStats {
    /// Number of open operations.
    pub opens: AtomicU64,
    /// Number of close operations.
    pub closes: AtomicU64,
    /// Number of read operations.
    pub reads: AtomicU64,
    /// Number of write operations.
    pub writes: AtomicU64,
    /// Number of flush operations.
    pub flushes: AtomicU64,
    /// Bytes read.
    pub bytes_read: AtomicU64,
    /// Bytes written.
    pub bytes_written: AtomicU64,
}

/// A plain-value snapshot of [`FsStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsStatsSnapshot {
    /// Number of open operations.
    pub opens: u64,
    /// Number of close operations.
    pub closes: u64,
    /// Number of read operations.
    pub reads: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Number of flush operations.
    pub flushes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

impl FsStats {
    /// Takes a consistent-enough snapshot (counters are independent).
    pub fn snapshot(&self) -> FsStatsSnapshot {
        FsStatsSnapshot {
            opens: self.opens.load(Ordering::Relaxed),
            closes: self.closes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

impl FsStatsSnapshot {
    /// Total operation count across all classes.
    pub fn total_ops(&self) -> u64 {
        self.opens + self.closes + self.reads + self.writes + self.flushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = FsStats::default();
        s.reads.fetch_add(3, Ordering::Relaxed);
        s.bytes_read.fetch_add(4096, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.reads, 3);
        assert_eq!(snap.bytes_read, 4096);
        assert_eq!(snap.total_ops(), 3);
    }
}
