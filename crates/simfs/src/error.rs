//! File-system error type.

use std::fmt;

/// Errors surfaced by the simulated file systems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Open of a non-existent path without `create`.
    NotFound(String),
    /// Operation on a handle that was already closed.
    StaleHandle(String),
    /// Read entirely beyond end-of-file.
    BeyondEof {
        path: String,
        offset: u64,
        size: u64,
    },
    /// Write to a handle opened read-only.
    ReadOnly(String),
    /// Fault injected by a test (failure-injection hooks).
    Injected(String),
}

/// Result alias for file-system operations.
pub type FsResult<T> = Result<T, FsError>;

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
            FsError::StaleHandle(p) => write!(f, "stale handle: {p}"),
            FsError::BeyondEof { path, offset, size } => {
                write!(f, "read beyond eof: {path} offset {offset} size {size}")
            }
            FsError::ReadOnly(p) => write!(f, "handle is read-only: {p}"),
            FsError::Injected(msg) => write!(f, "injected fault: {msg}"),
        }
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            FsError::NotFound("/x".into()).to_string(),
            "no such file: /x"
        );
        assert!(FsError::BeyondEof {
            path: "/y".into(),
            offset: 10,
            size: 5
        }
        .to_string()
        .contains("offset 10"));
    }
}
