//! NFS performance model.
//!
//! Models the paper's NFS file system (Voltrino's home/project space): a
//! single server behind RPC round trips whose bandwidth is shared among
//! all active clients. Two properties matter for reproducing Table IIa:
//!
//! * aggregate bandwidth is low and flat — adding clients does not add
//!   bandwidth, so the MPI-IO benchmark is an order of magnitude slower
//!   than on Lustre;
//! * very large single transfers (what two-phase collective aggregators
//!   emit) overflow the server's write-behind cache and pay a penalty,
//!   which is why *collective* MPI-IO is slower than independent on NFS
//!   (1376.67 s vs 880.46 s in the paper) while the reverse holds on
//!   Lustre.

use crate::model::{transfer_secs, CacheState, FsKind, MetaKind, OpCtx, PerfModel, XferKind, MIB};
use iosim_time::SimDuration;

/// Tunable parameters of the NFS model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NfsParams {
    /// RPC round-trip latency per uncached operation (seconds).
    pub rpc_latency_s: f64,
    /// Amortized client-cache operation latency (seconds) for cached
    /// sequential reads / buffered writes.
    pub cached_op_latency_s: f64,
    /// Server read bandwidth shared by all clients (bytes/s).
    pub server_read_bw: f64,
    /// Server write bandwidth shared by all clients (bytes/s).
    pub server_write_bw: f64,
    /// Per-client link bandwidth cap (bytes/s).
    pub client_bw: f64,
    /// Transfers larger than this overflow the server write-behind
    /// cache (bytes).
    pub write_cache_bytes: u64,
    /// Multiplier applied to the bandwidth term of cache-overflowing
    /// writes.
    pub overflow_penalty: f64,
    /// Multiplier applied to unaligned transfers (read-modify-write of
    /// partial pages).
    pub unaligned_penalty: f64,
    /// Metadata operation latency (seconds) — open/close/stat.
    pub meta_latency_s: f64,
    /// Client cache bandwidth (bytes/s): cached reads and buffered
    /// small writes move at memory speed, not server speed.
    pub cache_bw: f64,
}

impl Default for NfsParams {
    /// Defaults sized to a mid-range NFS appliance, matching the
    /// aggregate throughput implied by the paper's Table IIa runtimes
    /// (≈125 MB/s aggregate for the MPI-IO benchmark).
    fn default() -> Self {
        Self {
            rpc_latency_s: 1.2e-3,
            cached_op_latency_s: 18e-6,
            server_read_bw: 140.0 * MIB,
            server_write_bw: 125.0 * MIB,
            client_bw: 1000.0 * MIB,
            write_cache_bytes: 64 * 1024 * 1024,
            overflow_penalty: 1.75,
            unaligned_penalty: 1.15,
            meta_latency_s: 2.0e-3,
            cache_bw: 6.0e9,
        }
    }
}

/// The NFS model.
#[derive(Debug, Clone)]
pub struct NfsModel {
    params: NfsParams,
}

impl NfsModel {
    /// Creates the model with the given parameters.
    pub fn new(params: NfsParams) -> Self {
        Self { params }
    }

    /// Access to the parameters (used by calibration tooling).
    pub fn params(&self) -> &NfsParams {
        &self.params
    }

    fn shared_bw(&self, kind: XferKind, clients: u32) -> f64 {
        let server = match kind {
            XferKind::Read => self.params.server_read_bw,
            XferKind::Write => self.params.server_write_bw,
        };
        (server / clients.max(1) as f64).min(self.params.client_bw)
    }
}

impl Default for NfsModel {
    fn default() -> Self {
        Self::new(NfsParams::default())
    }
}

impl PerfModel for NfsModel {
    fn kind(&self) -> FsKind {
        FsKind::Nfs
    }

    fn caches_own_writes(&self) -> bool {
        false // actimeo=0: reads always revalidate at the server
    }

    fn meta_op(&self, kind: MetaKind, ctx: &OpCtx) -> SimDuration {
        let base = match kind {
            MetaKind::Open => self.params.meta_latency_s * 1.5, // lookup + access + open
            MetaKind::Close => self.params.meta_latency_s * 0.5,
            MetaKind::Flush => self.params.meta_latency_s * 2.0, // COMMIT round trip
            MetaKind::Stat => self.params.meta_latency_s,
        };
        SimDuration::from_secs_f64(base * ctx.load_factor * ctx.jitter)
    }

    fn transfer(&self, kind: XferKind, bytes: u64, ctx: &OpCtx) -> SimDuration {
        match ctx.cached {
            CacheState::PageCache => {
                // Buffered/own pages: no server involvement.
                let secs =
                    self.params.cached_op_latency_s + transfer_secs(bytes, self.params.cache_bw);
                SimDuration::from_secs_f64(secs * ctx.load_factor * ctx.jitter)
            }
            CacheState::Readahead => {
                // Prefetch hides the RPC, but the bytes still come from
                // the server at its shared bandwidth.
                let secs = self.params.cached_op_latency_s
                    + transfer_secs(bytes, self.shared_bw(kind, ctx.active_clients));
                SimDuration::from_secs_f64(secs * ctx.load_factor * ctx.jitter)
            }
            CacheState::Miss => {
                let latency = self.params.rpc_latency_s;
                let mut bw_secs = transfer_secs(bytes, self.shared_bw(kind, ctx.active_clients));
                if kind == XferKind::Write && bytes > self.params.write_cache_bytes {
                    bw_secs *= self.params.overflow_penalty;
                }
                if !ctx.aligned {
                    bw_secs *= self.params.unaligned_penalty;
                }
                SimDuration::from_secs_f64((latency + bw_secs) * ctx.load_factor * ctx.jitter)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> OpCtx {
        OpCtx::neutral()
    }

    #[test]
    fn bandwidth_is_shared_not_scaled() {
        let m = NfsModel::default();
        let solo = m.transfer(XferKind::Write, 16 * 1024 * 1024, &ctx());
        let mut crowded_ctx = ctx();
        crowded_ctx.active_clients = 32;
        let crowded = m.transfer(XferKind::Write, 16 * 1024 * 1024, &crowded_ctx);
        // 32 clients share the same server: each sees ~32x the time.
        let ratio = crowded.as_secs_f64() / solo.as_secs_f64();
        assert!(ratio > 20.0, "expected heavy sharing, got ratio {ratio}");
    }

    #[test]
    fn cache_overflow_penalizes_huge_writes() {
        let m = NfsModel::default();
        let small = m.transfer(XferKind::Write, 32 * 1024 * 1024, &ctx());
        let huge = m.transfer(XferKind::Write, 256 * 1024 * 1024, &ctx());
        // 8x the bytes but with overflow penalty: clearly more than 8x.
        let ratio = huge.as_secs_f64() / small.as_secs_f64();
        assert!(ratio > 8.5, "overflow penalty missing, ratio {ratio}");
    }

    #[test]
    fn cached_ops_skip_the_rpc() {
        let m = NfsModel::default();
        let mut ra = ctx();
        ra.cached = CacheState::Readahead;
        let mut pc = ctx();
        pc.cached = CacheState::PageCache;
        let miss = m.transfer(XferKind::Read, 64, &ctx());
        let readahead = m.transfer(XferKind::Read, 64, &ra);
        let page = m.transfer(XferKind::Read, 64, &pc);
        assert!(readahead.as_secs_f64() < miss.as_secs_f64() / 5.0);
        assert!(page <= readahead);
    }

    #[test]
    fn readahead_still_pays_server_bandwidth() {
        let m = NfsModel::default();
        let mut ra = ctx();
        ra.cached = CacheState::Readahead;
        let mut pc = ctx();
        pc.cached = CacheState::PageCache;
        let big = 16 * 1024 * 1024;
        let from_server = m.transfer(XferKind::Read, big, &ra);
        let from_memory = m.transfer(XferKind::Read, big, &pc);
        assert!(from_server.as_secs_f64() > from_memory.as_secs_f64() * 10.0);
    }

    #[test]
    fn weather_scales_everything() {
        let m = NfsModel::default();
        let mut stormy = ctx();
        stormy.load_factor = 2.0;
        let calm_d = m.transfer(XferKind::Read, 1024 * 1024, &ctx());
        let storm_d = m.transfer(XferKind::Read, 1024 * 1024, &stormy);
        assert!((storm_d.as_secs_f64() / calm_d.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn meta_ops_have_expected_ordering() {
        let m = NfsModel::default();
        let open = m.meta_op(MetaKind::Open, &ctx());
        let close = m.meta_op(MetaKind::Close, &ctx());
        let flush = m.meta_op(MetaKind::Flush, &ctx());
        assert!(close < open && open < flush);
    }

    #[test]
    fn unaligned_costs_more() {
        let m = NfsModel::default();
        let mut unaligned = ctx();
        unaligned.aligned = false;
        let a = m.transfer(XferKind::Write, 4 * 1024 * 1024, &ctx());
        let u = m.transfer(XferKind::Write, 4 * 1024 * 1024, &unaligned);
        assert!(u > a);
    }
}
