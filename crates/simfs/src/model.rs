//! The performance-model interface shared by NFS and Lustre.

use iosim_time::SimDuration;

/// Which file system a model represents (surfaces in experiment labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsKind {
    /// Network File System (single server).
    Nfs,
    /// Lustre (striped parallel file system).
    Lustre,
}

impl FsKind {
    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            FsKind::Nfs => "NFS",
            FsKind::Lustre => "Lustre",
        }
    }
}

/// Metadata operation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaKind {
    /// `open`/`create` — namespace lookup plus handle establishment.
    Open,
    /// `close` — handle teardown (Lustre may flush dirty extents).
    Close,
    /// `flush`/`fsync` — force dirty data to the server/OSTs.
    Flush,
    /// `stat`-like lookup.
    Stat,
}

/// Data-transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XferKind {
    /// Read from the file system.
    Read,
    /// Write to the file system.
    Write,
}

/// How an access relates to the client cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheState {
    /// Cold access: full RPC latency plus server bandwidth.
    Miss,
    /// Sequential access inside the readahead window (or a buffered
    /// small write): the *latency* is hidden by prefetch/write-behind,
    /// but the bytes still cross the wire at the server's shared
    /// bandwidth.
    Readahead,
    /// The client's own cached pages (Lustre under a valid extent
    /// lock): no server involvement, memory-speed transfer.
    PageCache,
}

/// Per-operation context handed to the model.
#[derive(Debug, Clone, Copy)]
pub struct OpCtx {
    /// Number of clients actively using this file system in the job
    /// (registered at mount time); bandwidth is shared among them.
    pub active_clients: u32,
    /// Weather factor at the operation's start time (multiplies the
    /// modelled duration).
    pub load_factor: f64,
    /// Per-operation multiplicative jitter from the rank's RNG.
    pub jitter: f64,
    /// Whether the access is aligned to the file system's natural
    /// boundary (stripe-aligned on Lustre, page/wsize-aligned on NFS).
    /// Collective two-phase I/O produces aligned accesses.
    pub aligned: bool,
    /// Whether the target file is concurrently shared by many ranks
    /// (single-shared-file workloads pay lock contention on Lustre).
    pub shared_file: bool,
    /// The access's relation to the client cache. Readahead/buffered
    /// accesses pay amortized latency instead of a full RPC — what lets
    /// HMMER issue millions of tiny operations in minutes — while page
    /// cache hits skip the server entirely.
    pub cached: CacheState,
}

impl OpCtx {
    /// A neutral context used by unit tests: one client, calm weather,
    /// no jitter, aligned access to an unshared file.
    pub fn neutral() -> Self {
        Self {
            active_clients: 1,
            load_factor: 1.0,
            jitter: 1.0,
            aligned: true,
            shared_file: false,
            cached: CacheState::Miss,
        }
    }
}

/// A file-system performance model: pure functions from operation
/// descriptions to durations. Implementations must be deterministic —
/// all randomness comes in through `OpCtx::jitter`.
pub trait PerfModel: Send + Sync {
    /// Which file system this models.
    fn kind(&self) -> FsKind;

    /// Duration of a metadata operation.
    fn meta_op(&self, kind: MetaKind, ctx: &OpCtx) -> SimDuration;

    /// Duration of a data transfer of `bytes`.
    fn transfer(&self, kind: XferKind, bytes: u64, ctx: &OpCtx) -> SimDuration;

    /// Whether a client's reads of data it wrote through a still-open
    /// handle are served from its page cache. True for Lustre (valid
    /// extent lock ⇒ cached pages are authoritative); false for NFS
    /// mounted with `actimeo=0`, where every read revalidates at the
    /// server — the setting HPC centres use for coherence and the
    /// reason the paper's NFS runtimes pay for both phases.
    fn caches_own_writes(&self) -> bool {
        true
    }
}

/// Helper: seconds for `bytes` at `bw` bytes/second.
pub(crate) fn transfer_secs(bytes: u64, bw: f64) -> f64 {
    if bw <= 0.0 {
        return 0.0;
    }
    bytes as f64 / bw
}

/// One mebibyte, the unit most model parameters are expressed in.
pub const MIB: f64 = 1024.0 * 1024.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(FsKind::Nfs.name(), "NFS");
        assert_eq!(FsKind::Lustre.name(), "Lustre");
    }

    #[test]
    fn transfer_secs_basics() {
        assert!((transfer_secs(1024, 1024.0) - 1.0).abs() < 1e-12);
        assert_eq!(transfer_secs(100, 0.0), 0.0);
    }
}
