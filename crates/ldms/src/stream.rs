//! LDMS Streams: the tag-matched publish/subscribe bus.

use iosim_time::Epoch;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Payload encoding (Section IV.B: "Event data can be specified as
/// either string or JSON format").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFormat {
    /// JSON-formatted payload.
    Json,
    /// Raw string payload.
    Str,
}

/// Priority class of a stream message, driving shed order under
/// overload: bulk read/write records degrade first, summary sketches
/// next, and metadata (open/close) events are always delivered
/// individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MsgClass {
    /// Bulk I/O records (read/write segments) — lowest priority, the
    /// first traffic the overload controller sheds into summaries.
    #[default]
    Bulk,
    /// Metadata events (open/close) — never summarized, shed last.
    Meta,
    /// A per-(job, rank, window) summary sketch standing in for
    /// `summary_count` folded bulk events.
    Summary,
}

/// One stream message in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamMessage {
    /// Stream tag the message was published under.
    pub tag: Arc<str>,
    /// Payload encoding.
    pub format: MsgFormat,
    /// The payload itself.
    pub data: Arc<str>,
    /// Producer (node) name of the publisher.
    pub producer: Arc<str>,
    /// Virtual time at publish.
    pub publish_time: Epoch,
    /// Virtual time at delivery to the subscriber (publish time plus
    /// accumulated transport delay).
    pub recv_time: Epoch,
    /// Aggregation hops traversed.
    pub hops: u32,
    /// Per-publisher sequence number, stamped by the connector so the
    /// store can detect gaps (`None` for unsequenced sources).
    pub seq: Option<u64>,
    /// Idempotency-key context `(job_id, rank)`, stamped by the
    /// connector alongside `seq` so replayed deliveries can be
    /// deduplicated on `(producer, job, rank, seq)`.
    pub origin: Option<(u64, u64)>,
    /// True when the message was re-sent from a write-ahead-log replay
    /// after a crash restart.
    pub replayed: bool,
    /// Number of logical messages coalesced into this one (`0` for a
    /// plain message, `n >= 1` for a batch frame carrying `n`
    /// [`crate::batch`]-encoded records). Everything that counts
    /// messages — ledger, hub stats, loss attribution — weights a
    /// frame by this.
    pub batch: u32,
    /// Trace context: the telemetry trace id this message accumulates
    /// hop spans under, stamped by the connector on a sampled subset
    /// of messages. `None` (the default) means untraced — the hot
    /// path skips all span recording.
    pub trace: Option<u64>,
    /// Priority class (shed order under overload). Defaults to
    /// [`MsgClass::Bulk`]; inert unless an overload controller or
    /// priority-shedding queue is configured.
    pub class: MsgClass,
    /// For [`MsgClass::Summary`] messages: how many folded bulk events
    /// this sketch stands in for (its ledger mass). `0` otherwise.
    pub summary_count: u32,
}

impl StreamMessage {
    /// Creates a message at the publisher.
    pub fn new(
        tag: &str,
        format: MsgFormat,
        data: String,
        producer: &str,
        publish_time: Epoch,
    ) -> Self {
        Self {
            tag: Arc::from(tag),
            format,
            data: Arc::from(data.as_str()),
            producer: Arc::from(producer),
            publish_time,
            recv_time: publish_time,
            hops: 0,
            seq: None,
            origin: None,
            replayed: false,
            batch: 0,
            trace: None,
            class: MsgClass::Bulk,
            summary_count: 0,
        }
    }

    /// Stamps a per-publisher sequence number on the message.
    pub fn with_seq(mut self, seq: u64) -> Self {
        self.seq = Some(seq);
        self
    }

    /// Marks the message as a batch frame carrying `n` logical
    /// messages.
    pub fn with_batch(mut self, n: u32) -> Self {
        self.batch = n;
        self
    }

    /// Stamps a telemetry trace context (`None` leaves the message
    /// untraced).
    pub fn with_trace(mut self, trace: Option<u64>) -> Self {
        self.trace = trace;
        self
    }

    /// Stamps the priority class.
    pub fn with_class(mut self, class: MsgClass) -> Self {
        self.class = class;
        self
    }

    /// Marks the message as a summary sketch standing in for `n`
    /// folded bulk events (sets the class to [`MsgClass::Summary`]).
    pub fn with_summary_count(mut self, n: u32) -> Self {
        self.summary_count = n;
        self.class = MsgClass::Summary;
        self
    }

    /// True when the message is a batch frame.
    pub fn is_frame(&self) -> bool {
        self.batch > 0
    }

    /// True when the message is a summary sketch.
    pub fn is_summary(&self) -> bool {
        self.class == MsgClass::Summary
    }

    /// Logical message weight: `1` for a plain message, the record
    /// count for a batch frame (an empty frame still weighs 1 — it is
    /// one message on the wire), and the folded-event count for a
    /// summary sketch — the mass it carries through the ledger.
    pub fn weight(&self) -> u64 {
        if self.class == MsgClass::Summary {
            return u64::from(self.summary_count.max(1));
        }
        u64::from(self.batch.max(1))
    }

    /// Stamps the `(job_id, rank)` origin used in the idempotency key.
    pub fn with_origin(mut self, job_id: u64, rank: u64) -> Self {
        self.origin = Some((job_id, rank));
        self
    }

    /// The message's idempotency key `(producer, job, rank, seq)`, or
    /// `None` for unsequenced messages (which are never deduplicated).
    /// Sequenced messages without an origin key on `(producer, 0, 0,
    /// seq)` — still unique per producer.
    pub fn delivery_key(&self) -> Option<crate::ledger::DeliveryKey> {
        let seq = self.seq?;
        let (job, rank) = self.origin.unwrap_or((0, 0));
        Some((self.producer.clone(), job, rank, seq))
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A consumer of delivered stream messages (a store plugin or an
/// analysis tap).
pub trait StreamSink: Send + Sync {
    /// Handles one delivered message.
    fn deliver(&self, msg: &StreamMessage);
}

/// Delivery counters for one stream hub.
#[derive(Debug, Default)]
pub struct StreamStats {
    /// Messages published into this hub.
    pub published: AtomicU64,
    /// Messages delivered to at least one subscriber.
    pub delivered: AtomicU64,
    /// Messages dropped because no subscriber matched the tag (LDMS
    /// Streams does not cache: "the published data can only be
    /// received after subscription").
    pub dropped_no_subscriber: AtomicU64,
    /// Total payload bytes published.
    pub bytes: AtomicU64,
}

impl StreamStats {
    /// Published count.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Delivered count.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Dropped-for-lack-of-subscriber count.
    pub fn dropped(&self) -> u64 {
        self.dropped_no_subscriber.load(Ordering::Relaxed)
    }

    /// Total bytes published.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// The per-daemon stream hub: subscriptions by exact tag.
#[derive(Default)]
pub struct StreamHub {
    subs: RwLock<HashMap<String, Vec<Arc<dyn StreamSink>>>>,
    stats: StreamStats,
}

impl StreamHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes a sink to a tag.
    pub fn subscribe(&self, tag: &str, sink: Arc<dyn StreamSink>) {
        self.subs
            .write()
            .entry(tag.to_string())
            .or_default()
            .push(sink);
    }

    /// Number of subscribers on a tag.
    pub fn subscriber_count(&self, tag: &str) -> usize {
        self.subs.read().get(tag).map_or(0, Vec::len)
    }

    /// Delivers a message to all subscribers of its tag. Returns how
    /// many sinks received it (0 = dropped, best-effort semantics).
    /// Counters move in logical-message units: a batch frame counts
    /// for every message coalesced into it.
    pub fn dispatch(&self, msg: &StreamMessage) -> usize {
        let weight = msg.weight();
        self.stats.published.fetch_add(weight, Ordering::Relaxed);
        self.stats
            .bytes
            .fetch_add(msg.len() as u64, Ordering::Relaxed);
        let subs = self.subs.read();
        match subs.get(msg.tag.as_ref()) {
            Some(sinks) if !sinks.is_empty() => {
                for s in sinks {
                    s.deliver(msg);
                }
                self.stats.delivered.fetch_add(weight, Ordering::Relaxed);
                sinks.len()
            }
            _ => {
                self.stats
                    .dropped_no_subscriber
                    .fetch_add(weight, Ordering::Relaxed);
                0
            }
        }
    }

    /// Hub delivery counters.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }
}

/// A sink that buffers messages for later inspection (tests, analysis
/// taps, and the simple store plugins). Optionally bounded: a full
/// bounded sink rejects new messages and counts the overflow rather
/// than growing without limit.
#[derive(Default)]
pub struct BufferSink {
    messages: Mutex<Vec<StreamMessage>>,
    capacity: usize,
    overflowed: AtomicU64,
}

impl BufferSink {
    /// Creates an unbounded buffer sink.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Creates a bounded buffer sink holding at most `capacity`
    /// messages (0 = unbounded).
    pub fn with_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            capacity,
            ..Self::default()
        })
    }

    /// Number of buffered messages.
    pub fn len(&self) -> usize {
        self.messages.lock().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Messages rejected because the sink was full.
    pub fn overflowed(&self) -> u64 {
        self.overflowed.load(Ordering::Relaxed)
    }

    /// Drains the buffered messages.
    pub fn take(&self) -> Vec<StreamMessage> {
        std::mem::take(&mut self.messages.lock())
    }

    /// Clones the buffered messages without draining.
    pub fn snapshot(&self) -> Vec<StreamMessage> {
        self.messages.lock().clone()
    }
}

impl StreamSink for BufferSink {
    fn deliver(&self, msg: &StreamMessage) {
        let mut messages = self.messages.lock();
        if self.capacity > 0 && messages.len() >= self.capacity {
            self.overflowed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        messages.push(msg.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(tag: &str, data: &str) -> StreamMessage {
        StreamMessage::new(
            tag,
            MsgFormat::Json,
            data.to_string(),
            "nid00001",
            Epoch::from_secs(1),
        )
    }

    #[test]
    fn dispatch_reaches_matching_subscribers_only() {
        let hub = StreamHub::new();
        let a = BufferSink::new();
        let b = BufferSink::new();
        hub.subscribe("darshanConnector", a.clone());
        hub.subscribe("other", b.clone());
        assert_eq!(hub.dispatch(&msg("darshanConnector", "{}")), 1);
        assert_eq!(a.len(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn unsubscribed_tag_drops_message() {
        let hub = StreamHub::new();
        assert_eq!(hub.dispatch(&msg("nobody", "{}")), 0);
        assert_eq!(hub.stats().dropped(), 1);
        assert_eq!(hub.stats().published(), 1);
        assert_eq!(hub.stats().delivered(), 0);
    }

    #[test]
    fn no_caching_late_subscriber_misses_earlier_messages() {
        let hub = StreamHub::new();
        hub.dispatch(&msg("t", "early"));
        let late = BufferSink::new();
        hub.subscribe("t", late.clone());
        hub.dispatch(&msg("t", "later"));
        let got = late.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].data.as_ref(), "later");
    }

    #[test]
    fn multiple_subscribers_each_get_the_message() {
        let hub = StreamHub::new();
        let a = BufferSink::new();
        let b = BufferSink::new();
        hub.subscribe("t", a.clone());
        hub.subscribe("t", b.clone());
        assert_eq!(hub.dispatch(&msg("t", "x")), 2);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn bounded_sink_counts_overflow() {
        let hub = StreamHub::new();
        let sink = BufferSink::with_capacity(2);
        hub.subscribe("t", sink.clone());
        for i in 0..5 {
            hub.dispatch(&msg("t", &format!("{i}")));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.overflowed(), 3);
        // Draining makes room again.
        assert_eq!(sink.take().len(), 2);
        hub.dispatch(&msg("t", "again"));
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn seq_stamp_round_trips() {
        let m = msg("t", "{}").with_seq(41);
        assert_eq!(m.seq, Some(41));
        assert_eq!(msg("t", "{}").seq, None);
    }

    #[test]
    fn delivery_key_requires_seq_and_defaults_origin() {
        assert_eq!(msg("t", "{}").delivery_key(), None);
        let m = msg("t", "{}").with_seq(3);
        let (_, job, rank, seq) = m.delivery_key().unwrap();
        assert_eq!((job, rank, seq), (0, 0, 3));
        let m = msg("t", "{}").with_seq(3).with_origin(99, 4);
        let (p, job, rank, seq) = m.delivery_key().unwrap();
        assert_eq!((p.as_ref(), job, rank, seq), ("nid00001", 99, 4, 3));
        assert!(!m.replayed);
    }

    #[test]
    fn summary_class_carries_folded_mass_as_weight() {
        let m = msg("t", "{}");
        assert_eq!(m.class, MsgClass::Bulk);
        assert_eq!(m.weight(), 1);
        let meta = msg("t", "{}").with_class(MsgClass::Meta);
        assert_eq!(meta.weight(), 1, "class does not change plain weight");
        let s = msg("t", "{}").with_summary_count(17);
        assert!(s.is_summary());
        assert_eq!(s.weight(), 17, "a sketch weighs its folded events");
        let empty = msg("t", "{}").with_summary_count(0);
        assert_eq!(empty.weight(), 1, "degenerate sketch still weighs 1");
    }

    #[test]
    fn stats_track_bytes() {
        let hub = StreamHub::new();
        let a = BufferSink::new();
        hub.subscribe("t", a);
        hub.dispatch(&msg("t", "12345"));
        assert_eq!(hub.stats().bytes(), 5);
    }
}
