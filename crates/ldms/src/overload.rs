//! Overload control: graceful degradation under message storms.
//!
//! The paper's worst case is a message storm — HMMER publishes
//! 1.5–2.4 k msg/s and millions of events, and the connector's only
//! defense today is a bounded retry queue that silently drops oldest.
//! This module adds an explicit degradation ladder in front of every
//! forwarding hop, trading *fidelity* for *survival* in controlled,
//! fully accounted steps:
//!
//! 1. **Normal** — below the throttle watermark, messages pass
//!    untouched (byte-identical to the seed pipeline).
//! 2. **Throttle** — the hop paces admissions in virtual time: each
//!    message's `recv_time` is pushed to the next service slot, which
//!    models the backpressure signal a real LDMS daemon would push
//!    upstream to slow the connector's publish loop.
//! 3. **Spill** — messages are parked straight into the hop's retry
//!    queue (and therefore its write-ahead log) with a paced release
//!    instant and [`LossCause::Backpressure`] attribution if they are
//!    ultimately abandoned. The WAL is the buffer between "slow down"
//!    and "start summarizing".
//! 4. **Sample** — a deterministic, seeded thinner keeps 1-in-N bulk
//!    events individually and folds the rest into per-(producer, job,
//!    rank, window) *summary sketches* (count, bytes, min/max/sum
//!    duration). Sketches travel as first-class
//!    [`MsgClass::Summary`] messages whose ledger weight is the
//!    folded-event count, so `published == delivered + losses +
//!    summarized` balances exactly.
//!
//! Load is measured by a *fluid ingress meter*: the simulated
//! transport has no congestion (links delay, they do not queue), so
//! real queue depth never builds under a pure storm. The meter
//! integrates offered load against a configured service rate —
//! `depth = max(0, depth − rate·Δt) + weight` per arrival — and the
//! controller changes state when the modeled backlog crosses a
//! watermark, after a propagation delay standing in for the upstream
//! signal's travel time.
//!
//! Metadata-class events ([`MsgClass::Meta`], open/close records) are
//! *never* spilled or summarized: diagnosis needs every file
//! open/close individually, and they are a vanishing fraction of a
//! storm. They are still paced, so the backpressure signal reaches
//! them too. Everything here is deterministic: same seed, same
//! arrival order, same decisions.

use crate::batch::{self, FrameRecord};
use crate::fault::mix64;
use crate::ledger::LossCause;
use crate::stream::{MsgClass, MsgFormat, StreamMessage};
use iosim_time::{Epoch, SimDuration};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// High bit of a summary sketch's sequence number. Keeps sketch
/// idempotency keys disjoint from connector-stamped event sequences
/// (connectors count up from 1 and never reach 2^63).
pub const SUMMARY_SEQ_BIT: u64 = 1 << 63;

/// Overload-control policy for one forwarding hop. Watermarks are in
/// *modeled backlog* units — logical messages the hop is behind its
/// service rate.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadConfig {
    /// Modeled drain rate of the hop, logical messages per virtual
    /// second. The fluid meter integrates offered load against this.
    pub service_rate: f64,
    /// Backlog at which pacing starts.
    pub throttle_watermark: f64,
    /// Backlog at which admissions spill into the retry queue/WAL.
    pub spill_watermark: f64,
    /// Backlog at which adaptive sampling starts.
    pub sample_watermark: f64,
    /// In the Sample state, keep 1 in this many bulk events
    /// individually (`<= 1` keeps everything — sketches never open).
    pub sample_keep_every: u64,
    /// Sketch aggregation window (event publish-time buckets).
    pub window: SimDuration,
    /// Seed for the deterministic keep decision.
    pub seed: u64,
    /// Delay before a state change takes effect — the virtual travel
    /// time of the backpressure signal to the upstream publisher.
    pub propagation: SimDuration,
}

impl OverloadConfig {
    /// A policy derived from the hop's service rate: throttle at half
    /// a second of backlog, spill at one second, sample at two; keep
    /// 1-in-8 under sampling with one-second sketch windows and a
    /// 250 ms signal propagation delay.
    pub fn for_rate(service_rate: f64) -> Self {
        let rate = service_rate.max(1.0);
        Self {
            service_rate: rate,
            throttle_watermark: rate * 0.5,
            spill_watermark: rate,
            sample_watermark: rate * 2.0,
            sample_keep_every: 8,
            window: SimDuration::from_secs(1),
            seed: 0x0B5E_55ED,
            propagation: SimDuration::from_millis(250),
        }
    }

    /// Sets the three watermarks explicitly.
    pub fn with_watermarks(mut self, throttle: f64, spill: f64, sample: f64) -> Self {
        self.throttle_watermark = throttle;
        self.spill_watermark = spill;
        self.sample_watermark = sample;
        self
    }

    /// Sets the keep-1-in-N sampling rate.
    pub fn with_keep_every(mut self, keep_every: u64) -> Self {
        self.sample_keep_every = keep_every;
        self
    }

    /// Sets the sketch window.
    pub fn with_window(mut self, window: SimDuration) -> Self {
        self.window = window;
        self
    }

    /// Sets the keep-decision seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the backpressure propagation delay.
    pub fn with_propagation(mut self, propagation: SimDuration) -> Self {
        self.propagation = propagation;
        self
    }

    /// The state the meter depth maps to under this policy.
    fn state_for(&self, depth: f64) -> OverloadState {
        if depth >= self.sample_watermark {
            OverloadState::Sample
        } else if depth >= self.spill_watermark {
            OverloadState::Spill
        } else if depth >= self.throttle_watermark {
            OverloadState::Throttle
        } else {
            OverloadState::Normal
        }
    }
}

/// Where a hop sits on the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum OverloadState {
    /// Below all watermarks: pass-through.
    #[default]
    Normal,
    /// Pacing admissions in virtual time.
    Throttle,
    /// Parking admissions into the retry queue / WAL.
    Spill,
    /// Thinning bulk events into summary sketches.
    Sample,
}

impl OverloadState {
    /// Stable lowercase name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            OverloadState::Normal => "normal",
            OverloadState::Throttle => "throttle",
            OverloadState::Spill => "spill",
            OverloadState::Sample => "sample",
        }
    }
}

/// What the controller decided for one admission. At most one of
/// `forward`/`spill` is set; `summaries` may accompany either (window
/// flushes ride on the admission that advanced the window).
#[derive(Debug, Default)]
pub struct AdmitOutcome {
    /// Message to forward now (possibly paced, possibly a thinned
    /// frame). `None` when the admission was fully folded or spilled.
    pub forward: Option<StreamMessage>,
    /// Message to park in the retry queue until the given release
    /// instant, with [`LossCause::Backpressure`] attribution.
    pub spill: Option<(StreamMessage, Epoch)>,
    /// Summary sketches flushed by this admission, to forward as
    /// first-class messages.
    pub summaries: Vec<StreamMessage>,
}

/// The loss cause spilled entries carry while parked.
pub const SPILL_CAUSE: LossCause = LossCause::Backpressure;

/// One open per-(producer, job, rank) aggregation window.
#[derive(Debug, Clone)]
struct Sketch {
    window_idx: u64,
    tag: Arc<str>,
    first_pub: Epoch,
    last_pub: Epoch,
    count: u64,
    bytes: u64,
    dur_min: f64,
    dur_max: f64,
    dur_sum: f64,
}

impl Sketch {
    fn open(window_idx: u64, tag: Arc<str>, at: Epoch) -> Self {
        Self {
            window_idx,
            tag,
            first_pub: at,
            last_pub: at,
            count: 0,
            bytes: 0,
            dur_min: f64::INFINITY,
            dur_max: 0.0,
            dur_sum: 0.0,
        }
    }

    fn fold(&mut self, bytes: u64, dur: f64, at: Epoch) {
        self.count += 1;
        self.bytes += bytes;
        if dur < self.dur_min {
            self.dur_min = dur;
        }
        if dur > self.dur_max {
            self.dur_max = dur;
        }
        self.dur_sum += dur;
        if at < self.first_pub {
            self.first_pub = at;
        }
        if at > self.last_pub {
            self.last_pub = at;
        }
    }
}

/// Per-(producer, job, rank) folding state.
#[derive(Debug, Default)]
struct KeyState {
    sketch: Option<Sketch>,
    /// Sketches emitted for this key so far — the running counter in
    /// the sketch sequence number, so re-entering the Sample state
    /// inside one window never reuses an idempotency key.
    emitted: u64,
}

#[derive(Debug)]
struct Inner {
    depth: f64,
    last: Epoch,
    state: OverloadState,
    pending: Option<(OverloadState, Epoch)>,
    next_slot: Epoch,
    max_depth: f64,
    keys: HashMap<(Arc<str>, u64, u64), KeyState>,
}

/// Monotone counters snapshot for reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadStats {
    /// Current ladder state.
    pub state: OverloadState,
    /// Current modeled backlog.
    pub depth: f64,
    /// Deepest modeled backlog seen.
    pub max_depth: f64,
    /// Logical messages whose delivery was delayed by pacing.
    pub throttled: u64,
    /// Logical messages parked via the spill stage.
    pub spilled: u64,
    /// Bulk events kept individually while sampling.
    pub kept_events: u64,
    /// Bulk events folded into sketches.
    pub folded_events: u64,
    /// Payload bytes of individually kept events.
    pub kept_bytes: u64,
    /// Payload bytes folded into sketches.
    pub folded_bytes: u64,
    /// Summary sketches emitted.
    pub summaries: u64,
    /// Ladder state changes taken (after propagation).
    pub transitions: u64,
}

impl OverloadStats {
    /// Fraction of sampled-stage events delivered individually
    /// (1.0 when sampling never engaged).
    pub fn accuracy_events(&self) -> f64 {
        let total = self.kept_events + self.folded_events;
        if total == 0 {
            1.0
        } else {
            self.kept_events as f64 / total as f64
        }
    }

    /// Fraction of sampled-stage payload bytes delivered individually.
    pub fn accuracy_bytes(&self) -> f64 {
        let total = self.kept_bytes + self.folded_bytes;
        if total == 0 {
            1.0
        } else {
            self.kept_bytes as f64 / total as f64
        }
    }
}

/// The per-hop overload controller. One instance guards one
/// forwarding daemon; every bulk/metadata admission flows through
/// [`OverloadController::admit`] before the send attempt.
#[derive(Debug)]
pub struct OverloadController {
    config: OverloadConfig,
    /// Disambiguates this hop's sketch sequence numbers from other
    /// hops' (two hops may fold the same (producer, job, rank) key).
    hop_ord: u64,
    inner: Mutex<Inner>,
    throttled: AtomicU64,
    spilled: AtomicU64,
    kept_events: AtomicU64,
    folded_events: AtomicU64,
    kept_bytes: AtomicU64,
    folded_bytes: AtomicU64,
    summaries: AtomicU64,
    transitions: AtomicU64,
}

impl OverloadController {
    /// Creates a controller for the hop with the given deterministic
    /// ordinal (its index in the network's node order).
    pub fn new(config: OverloadConfig, hop_ord: u64) -> Self {
        Self {
            config,
            hop_ord,
            inner: Mutex::new(Inner {
                depth: 0.0,
                last: Epoch::from_nanos(0),
                state: OverloadState::Normal,
                pending: None,
                next_slot: Epoch::from_nanos(0),
                max_depth: 0.0,
                keys: HashMap::new(),
            }),
            throttled: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
            kept_events: AtomicU64::new(0),
            folded_events: AtomicU64::new(0),
            kept_bytes: AtomicU64::new(0),
            folded_bytes: AtomicU64::new(0),
            summaries: AtomicU64::new(0),
            transitions: AtomicU64::new(0),
        }
    }

    /// The policy in force.
    pub fn config(&self) -> &OverloadConfig {
        &self.config
    }

    /// Current ladder state.
    pub fn state(&self) -> OverloadState {
        self.inner.lock().state
    }

    /// Counter snapshot.
    pub fn stats(&self) -> OverloadStats {
        let inner = self.inner.lock();
        OverloadStats {
            state: inner.state,
            depth: inner.depth,
            max_depth: inner.max_depth,
            throttled: self.throttled.load(Ordering::Relaxed),
            spilled: self.spilled.load(Ordering::Relaxed),
            kept_events: self.kept_events.load(Ordering::Relaxed),
            folded_events: self.folded_events.load(Ordering::Relaxed),
            kept_bytes: self.kept_bytes.load(Ordering::Relaxed),
            folded_bytes: self.folded_bytes.load(Ordering::Relaxed),
            summaries: self.summaries.load(Ordering::Relaxed),
            transitions: self.transitions.load(Ordering::Relaxed),
        }
    }

    /// The deterministic keep decision for one bulk event: stable in
    /// the seed and the event's identity, independent of arrival
    /// order. Events without a sequence number are always kept (they
    /// carry no idempotency key to account a fold under).
    fn keep(&self, job: u64, rank: u64, seq: Option<u64>) -> bool {
        let n = self.config.sample_keep_every;
        if n <= 1 {
            return true;
        }
        let Some(seq) = seq else { return true };
        let h = mix64(self.config.seed ^ mix64(job ^ rank.rotate_left(32)) ^ seq);
        h % n == 0
    }

    /// Runs one admission through the ladder. `now` is the message's
    /// arrival instant at this hop in virtual time.
    ///
    /// Summary-class and replayed messages must *not* be re-admitted
    /// (they are already-degraded or already-accounted traffic); this
    /// is enforced here by passing them through untouched.
    pub fn admit(&self, msg: StreamMessage, now: Epoch) -> AdmitOutcome {
        if msg.class == MsgClass::Summary || msg.replayed {
            return AdmitOutcome {
                forward: Some(msg),
                ..AdmitOutcome::default()
            };
        }
        let weight = msg.weight();
        let mut inner = self.inner.lock();
        self.meter(&mut inner, weight, now);
        let mut outcome = AdmitOutcome::default();
        self.advance_state(&mut inner, now, &mut outcome);
        match inner.state {
            OverloadState::Normal => {
                outcome.forward = Some(msg);
            }
            OverloadState::Throttle => {
                outcome.forward = Some(self.pace(&mut inner, msg, weight));
            }
            OverloadState::Spill if msg.class == MsgClass::Meta => {
                // Metadata is paced but never parked or folded.
                outcome.forward = Some(self.pace(&mut inner, msg, weight));
            }
            OverloadState::Spill => {
                let paced = self.pace(&mut inner, msg, weight);
                let release = paced.recv_time;
                self.spilled.fetch_add(weight, Ordering::Relaxed);
                outcome.spill = Some((paced, release));
            }
            OverloadState::Sample if msg.class == MsgClass::Meta => {
                outcome.forward = Some(self.pace(&mut inner, msg, weight));
            }
            OverloadState::Sample => {
                self.sample(&mut inner, msg, now, &mut outcome);
            }
        }
        outcome
    }

    /// Flushes every open sketch (campaign settle, or an explicit
    /// window close). Returned messages are forwarded by the caller.
    pub fn flush_all(&self, now: Epoch) -> Vec<StreamMessage> {
        let mut inner = self.inner.lock();
        let keys: Vec<_> = inner.keys.keys().cloned().collect();
        let mut out = Vec::new();
        for key in keys {
            if let Some(state) = inner.keys.get_mut(&key) {
                if let Some(sketch) = state.sketch.take() {
                    state.emitted += 1;
                    let counter = state.emitted;
                    out.push(self.summary_msg(&key, sketch, counter, now));
                }
            }
        }
        out
    }

    /// Integrates the fluid meter up to `now` and adds this arrival.
    fn meter(&self, inner: &mut Inner, weight: u64, now: Epoch) {
        let elapsed = now.since(inner.last).as_secs_f64();
        inner.depth = (inner.depth - self.config.service_rate * elapsed).max(0.0) + weight as f64;
        if now > inner.last {
            inner.last = now;
        }
        if inner.depth > inner.max_depth {
            inner.max_depth = inner.depth;
        }
    }

    /// Applies the watermark → state mapping with the propagation
    /// delay: a change is first *pending*, and takes effect once the
    /// signal has had time to reach the publisher. Leaving the Sample
    /// state flushes all open sketches into `outcome`.
    fn advance_state(&self, inner: &mut Inner, now: Epoch, outcome: &mut AdmitOutcome) {
        let target = self.config.state_for(inner.depth);
        if target == inner.state {
            inner.pending = None;
            return;
        }
        let effective_at = match inner.pending {
            Some((pending, at)) if pending == target => at,
            _ => {
                let at = now + self.config.propagation;
                inner.pending = Some((target, at));
                at
            }
        };
        if now >= effective_at {
            let was = inner.state;
            inner.state = target;
            inner.pending = None;
            self.transitions.fetch_add(1, Ordering::Relaxed);
            if was == OverloadState::Sample {
                let flushed = self.drain_sketches(inner, now);
                outcome.summaries.extend(flushed);
            }
        }
    }

    /// Pushes a message to the hop's next service slot, modeling the
    /// upstream publisher slowing down in virtual time.
    fn pace(&self, inner: &mut Inner, mut msg: StreamMessage, weight: u64) -> StreamMessage {
        let slot = if inner.next_slot > msg.recv_time {
            msg.recv_time = inner.next_slot;
            self.throttled.fetch_add(weight, Ordering::Relaxed);
            inner.next_slot
        } else {
            msg.recv_time
        };
        let service = SimDuration::from_secs_f64(weight as f64 / self.config.service_rate.max(1.0));
        inner.next_slot = slot + service;
        msg
    }

    /// The Sample-state path: thin bulk traffic 1-in-N, folding the
    /// rest into per-key window sketches.
    fn sample(&self, inner: &mut Inner, msg: StreamMessage, now: Epoch, out: &mut AdmitOutcome) {
        let (job, rank) = msg.origin.unwrap_or((0, 0));
        if msg.is_frame() {
            let Ok(records) = batch::decode_frame(&msg.data) else {
                // Undecodable frames pass through whole: fidelity over
                // thinning when we cannot attribute the members.
                let weight = msg.weight();
                out.forward = Some(self.pace(inner, msg, weight));
                return;
            };
            let mut kept: Vec<FrameRecord> = Vec::new();
            for r in records {
                if self.keep(job, rank, r.seq) {
                    self.kept_events.fetch_add(1, Ordering::Relaxed);
                    self.kept_bytes
                        .fetch_add(r.payload.len() as u64, Ordering::Relaxed);
                    kept.push(r);
                } else {
                    self.fold_event(inner, &msg, &r.payload, now, out);
                }
            }
            if !kept.is_empty() {
                let weight = kept.len() as u64;
                let mut thinned = msg;
                thinned.batch = kept.len() as u32;
                thinned.data = Arc::from(batch::encode_frame(&kept).as_str());
                out.forward = Some(self.pace(inner, thinned, weight));
            }
        } else if self.keep(job, rank, msg.seq) {
            self.kept_events.fetch_add(1, Ordering::Relaxed);
            self.kept_bytes
                .fetch_add(msg.len() as u64, Ordering::Relaxed);
            out.forward = Some(self.pace(inner, msg, 1));
        } else {
            let payload = msg.data.clone();
            self.fold_event(inner, &msg, &payload, now, out);
        }
    }

    /// Folds one bulk event into its key's open sketch, flushing the
    /// previous window if the event advanced past it.
    fn fold_event(
        &self,
        inner: &mut Inner,
        msg: &StreamMessage,
        payload: &str,
        now: Epoch,
        out: &mut AdmitOutcome,
    ) {
        let (job, rank) = msg.origin.unwrap_or((0, 0));
        let key = (msg.producer.clone(), job, rank);
        let window_ns = self.config.window.as_nanos().max(1);
        let window_idx = msg.publish_time.as_nanos() / window_ns;
        let bytes = payload.len() as u64;
        let dur = scan_f64(payload, "dur").unwrap_or(0.0);
        self.folded_events.fetch_add(1, Ordering::Relaxed);
        self.folded_bytes.fetch_add(bytes, Ordering::Relaxed);

        let state = inner.keys.entry(key.clone()).or_default();
        let needs_flush = state
            .sketch
            .as_ref()
            .is_some_and(|s| s.window_idx != window_idx);
        if needs_flush {
            let sketch = state.sketch.take().expect("checked above");
            state.emitted += 1;
            let counter = state.emitted;
            out.summaries
                .push(self.summary_msg(&key, sketch, counter, now));
        }
        let sketch = state
            .sketch
            .get_or_insert_with(|| Sketch::open(window_idx, msg.tag.clone(), msg.publish_time));
        sketch.fold(bytes, dur, msg.publish_time);
    }

    /// Drains every open sketch under the lock (Sample-state exit).
    fn drain_sketches(&self, inner: &mut Inner, now: Epoch) -> Vec<StreamMessage> {
        let keys: Vec<_> = inner.keys.keys().cloned().collect();
        let mut out = Vec::new();
        for key in keys {
            if let Some(state) = inner.keys.get_mut(&key) {
                if let Some(sketch) = state.sketch.take() {
                    state.emitted += 1;
                    let counter = state.emitted;
                    out.push(self.summary_msg(&key, sketch, counter, now));
                }
            }
        }
        out
    }

    /// Materializes one sketch as a first-class Summary message. The
    /// sequence number is `SUMMARY_SEQ_BIT | hop_ord<<48 | counter`:
    /// disjoint from event sequences, unique per hop and key, and
    /// stable under replay.
    fn summary_msg(
        &self,
        key: &(Arc<str>, u64, u64),
        sketch: Sketch,
        counter: u64,
        now: Epoch,
    ) -> StreamMessage {
        let (producer, job, rank) = (key.0.as_ref(), key.1, key.2);
        let payload = format!(
            concat!(
                "{{\"type\":\"summary\",\"job_id\":{},\"rank\":{},\"window\":{},",
                "\"first_ts\":{:.9},\"last_ts\":{:.9},\"count\":{},\"bytes\":{},",
                "\"dur_min\":{:.9},\"dur_max\":{:.9},\"dur_sum\":{:.9}}}"
            ),
            job,
            rank,
            sketch.window_idx,
            sketch.first_pub.as_secs_f64(),
            sketch.last_pub.as_secs_f64(),
            sketch.count,
            sketch.bytes,
            if sketch.dur_min.is_finite() {
                sketch.dur_min
            } else {
                0.0
            },
            sketch.dur_max,
            sketch.dur_sum,
        );
        self.summaries.fetch_add(1, Ordering::Relaxed);
        let seq = SUMMARY_SEQ_BIT | (self.hop_ord << 48) | (counter & 0xFFFF_FFFF_FFFF);
        let mut msg = StreamMessage::new(
            &sketch.tag,
            MsgFormat::Json,
            payload,
            producer,
            sketch.first_pub,
        )
        .with_seq(seq)
        .with_origin(job, rank)
        .with_summary_count(sketch.count.min(u64::from(u32::MAX)) as u32);
        msg.recv_time = now.max(sketch.first_pub);
        msg
    }
}

/// Pulls a numeric field out of a JSON payload without a parser: the
/// ldms crate carries no JSON dependency, and sketch folding only
/// needs two well-known scalar fields ("len", "dur"). Returns `None`
/// when the key is absent or non-numeric.
pub(crate) fn scan_f64(payload: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let i = payload.find(&pat)?;
    let value = payload[i + pat.len()..].trim_start();
    let end = value
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(value.len());
    value[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OverloadConfig {
        // rate 10 msg/s; throttle at 5, spill at 10, sample at 20
        // backlog; instant propagation unless overridden.
        OverloadConfig::for_rate(10.0).with_propagation(SimDuration::ZERO)
    }

    fn bulk(seq: u64, at_ms: u64) -> StreamMessage {
        StreamMessage::new(
            "t",
            MsgFormat::Json,
            format!("{{\"seq\":{seq},\"len\":4096,\"dur\":0.005}}"),
            "nid0",
            Epoch::from_nanos(at_ms * 1_000_000),
        )
        .with_seq(seq)
        .with_origin(7, 3)
    }

    #[test]
    fn scan_extracts_numeric_fields() {
        let p = r#"{"op":"write","len":4096,"dur":0.005,"rank":3}"#;
        assert_eq!(scan_f64(p, "len"), Some(4096.0));
        assert_eq!(scan_f64(p, "dur"), Some(0.005));
        assert_eq!(scan_f64(p, "missing"), None);
        assert_eq!(scan_f64(r#"{"dur":"fast"}"#, "dur"), None);
        assert_eq!(scan_f64("", "dur"), None);
    }

    #[test]
    fn meter_decays_at_service_rate() {
        let ctl = OverloadController::new(cfg(), 0);
        // 4 arrivals at t=0: depth 4, still Normal (throttle at 5).
        for i in 0..4 {
            let out = ctl.admit(bulk(i, 0), Epoch::from_nanos(0));
            assert!(out.forward.is_some());
        }
        assert_eq!(ctl.state(), OverloadState::Normal);
        assert!((ctl.stats().depth - 4.0).abs() < 1e-9);
        // One second later the backlog has fully drained.
        ctl.admit(bulk(9, 1000), Epoch::from_secs(1));
        assert!((ctl.stats().depth - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ladder_escalates_through_watermarks() {
        let ctl = OverloadController::new(cfg(), 0);
        let now = Epoch::from_nanos(0);
        let mut states = Vec::new();
        for i in 0..25 {
            ctl.admit(bulk(i, 0), now);
            states.push(ctl.state());
        }
        assert_eq!(states[3], OverloadState::Normal);
        assert!(states.contains(&OverloadState::Throttle));
        assert!(states.contains(&OverloadState::Spill));
        assert_eq!(*states.last().unwrap(), OverloadState::Sample);
        assert!(ctl.stats().transitions >= 3);
    }

    #[test]
    fn propagation_delays_the_transition() {
        let ctl = OverloadController::new(cfg().with_propagation(SimDuration::from_millis(500)), 0);
        for i in 0..8 {
            ctl.admit(bulk(i, 0), Epoch::from_nanos(0));
        }
        // Depth 8 >= throttle watermark 5, but the signal is in flight.
        assert_eq!(ctl.state(), OverloadState::Normal);
        ctl.admit(bulk(98, 100), Epoch::from_nanos(100 * 1_000_000));
        assert_eq!(ctl.state(), OverloadState::Normal, "still in flight");
        // At t=0.5 s the backlog (8 − 0.5·10 + 2 arrivals = 5) still
        // clears the watermark and the signal has landed.
        ctl.admit(bulk(99, 500), Epoch::from_nanos(500 * 1_000_000));
        assert_eq!(ctl.state(), OverloadState::Throttle);
    }

    #[test]
    fn throttle_paces_in_virtual_time() {
        let ctl = OverloadController::new(cfg(), 0);
        let now = Epoch::from_nanos(0);
        for i in 0..6 {
            ctl.admit(bulk(i, 0), now);
        }
        assert_eq!(ctl.state(), OverloadState::Throttle);
        let a = ctl.admit(bulk(100, 0), now).forward.unwrap();
        let b = ctl.admit(bulk(101, 0), now).forward.unwrap();
        assert!(b.recv_time > a.recv_time, "slots advance monotonically");
        let gap = b.recv_time.since(a.recv_time).as_secs_f64();
        assert!((gap - 0.1).abs() < 1e-9, "one service slot at 10 msg/s");
        assert!(ctl.stats().throttled > 0);
    }

    #[test]
    fn spill_parks_with_paced_release() {
        let ctl = OverloadController::new(cfg(), 0);
        let now = Epoch::from_nanos(0);
        for i in 0..12 {
            ctl.admit(bulk(i, 0), now);
        }
        assert_eq!(ctl.state(), OverloadState::Spill);
        let out = ctl.admit(bulk(100, 0), now);
        assert!(out.forward.is_none());
        let (msg, release) = out.spill.unwrap();
        assert_eq!(msg.seq, Some(100));
        assert!(release > now);
        assert!(ctl.stats().spilled >= 1);
    }

    #[test]
    fn meta_is_paced_but_never_spilled_or_folded() {
        let ctl = OverloadController::new(cfg(), 0);
        let now = Epoch::from_nanos(0);
        for i in 0..30 {
            ctl.admit(bulk(i, 0), now);
        }
        assert_eq!(ctl.state(), OverloadState::Sample);
        let folded_before = ctl.stats().folded_events;
        let meta = bulk(500, 0).with_class(MsgClass::Meta);
        let out = ctl.admit(meta, now);
        let fwd = out.forward.expect("meta always forwards");
        assert_eq!(fwd.class, MsgClass::Meta);
        assert!(out.spill.is_none());
        assert_eq!(ctl.stats().folded_events, folded_before);
    }

    #[test]
    fn sampling_conserves_mass_between_kept_and_folded() {
        let ctl = OverloadController::new(cfg().with_keep_every(4), 0);
        let now = Epoch::from_nanos(0);
        for i in 0..30 {
            ctl.admit(bulk(i, 0), now);
        }
        assert_eq!(ctl.state(), OverloadState::Sample);
        // Measured events use a distinct origin so ramp-up folds (same
        // producer, origin (7, 3)) do not pollute the balance.
        let mut kept = 0u64;
        let mut summary_mass = 0u64;
        const N: u64 = 200;
        let measured = |s: &StreamMessage| s.origin == Some((8, 4));
        for i in 0..N {
            let out = ctl.admit(bulk(1000 + i, 0).with_origin(8, 4), now);
            if let Some(f) = out.forward {
                kept += f.weight();
            }
            for s in out.summaries.iter().filter(|s| measured(s)) {
                summary_mass += s.weight();
            }
        }
        for s in ctl.flush_all(now) {
            assert!(s.is_summary());
            assert!(s.seq.unwrap() & SUMMARY_SEQ_BIT != 0);
            if measured(&s) {
                summary_mass += s.weight();
            }
        }
        assert_eq!(kept + summary_mass, N, "every event kept or folded once");
        let st = ctl.stats();
        assert!(st.kept_events + st.folded_events >= N);
        assert!(st.accuracy_events() > 0.0 && st.accuracy_events() < 1.0);
    }

    #[test]
    fn keep_decision_is_seeded_and_order_independent() {
        let a = OverloadController::new(cfg().with_seed(1).with_keep_every(4), 0);
        let b = OverloadController::new(cfg().with_seed(1).with_keep_every(4), 0);
        let c = OverloadController::new(cfg().with_seed(2).with_keep_every(4), 0);
        let da: Vec<bool> = (0..64).map(|s| a.keep(7, 3, Some(s))).collect();
        let db: Vec<bool> = (0..64).rev().map(|s| b.keep(7, 3, Some(s))).collect();
        let dc: Vec<bool> = (0..64).map(|s| c.keep(7, 3, Some(s))).collect();
        let db_fwd: Vec<bool> = db.into_iter().rev().collect();
        assert_eq!(da, db_fwd, "same seed, same decisions, any order");
        assert_ne!(da, dc, "different seed, different pattern");
        assert!(a.keep(7, 3, None), "seq-less events always kept");
    }

    #[test]
    fn window_advance_flushes_the_previous_sketch() {
        let ctl = OverloadController::new(
            cfg()
                .with_keep_every(u64::MAX) // fold everything
                .with_window(SimDuration::from_secs(1)),
            0,
        );
        let now = Epoch::from_nanos(0);
        for i in 0..30 {
            ctl.admit(bulk(i, 0), now);
        }
        assert_eq!(ctl.state(), OverloadState::Sample);
        // Publish times in window 0 — hold the sketch open. Arrivals
        // stay at `now` so the meter cannot drain below the watermark.
        let folded_before = ctl.stats().folded_events;
        let out = ctl.admit(bulk(2000, 10), now);
        assert!(out.forward.is_none() && out.summaries.is_empty());
        assert_eq!(ctl.stats().folded_events, folded_before + 1);
        // An event published in window 2 flushes window 0's sketch.
        let out = ctl.admit(bulk(2001, 2500), now);
        assert_eq!(out.summaries.len(), 1);
        let s = &out.summaries[0];
        assert!(s.is_summary());
        assert!(scan_f64(&s.data, "count").is_some());
        assert_eq!(scan_f64(&s.data, "job_id"), Some(7.0));
    }

    #[test]
    fn leaving_sample_state_flushes_open_sketches() {
        let ctl = OverloadController::new(cfg().with_keep_every(u64::MAX), 0);
        let now = Epoch::from_nanos(0);
        for i in 0..30 {
            ctl.admit(bulk(i, 0), now);
        }
        let out = ctl.admit(bulk(999, 10), now);
        assert!(out.summaries.is_empty(), "sketch still open");
        // Long quiet period: the meter drains, the ladder steps down,
        // and the open sketch flushes on the next admission.
        let later = Epoch::from_secs(100);
        let out = ctl.admit(bulk(1000, 100_000), later);
        assert_eq!(ctl.state(), OverloadState::Normal);
        assert_eq!(out.summaries.len(), 1);
        assert!(out.forward.is_some(), "normal state forwards");
    }

    #[test]
    fn frames_are_thinned_member_by_member() {
        let ctl = OverloadController::new(cfg().with_keep_every(2), 0);
        let now = Epoch::from_nanos(0);
        for i in 0..30 {
            ctl.admit(bulk(i, 0), now);
        }
        let records: Vec<FrameRecord> = (0..64)
            .map(|s| FrameRecord {
                seq: Some(3000 + s),
                payload: format!("{{\"len\":100,\"dur\":0.001,\"s\":{s}}}"),
            })
            .collect();
        let frame = StreamMessage::new(
            "t",
            MsgFormat::Json,
            batch::encode_frame(&records),
            "nid0",
            Epoch::from_nanos(0),
        )
        .with_origin(9, 1) // distinct key: isolate from ramp-up folds
        .with_batch(64);
        let out = ctl.admit(frame, now);
        let thinned = out.forward.expect("some members kept at 1-in-2");
        assert!(thinned.is_frame());
        assert!(thinned.batch < 64 && thinned.batch > 0);
        let members = batch::decode_frame(&thinned.data).unwrap();
        assert_eq!(members.len() as u32, thinned.batch);
        let folded: u64 = ctl
            .flush_all(now)
            .iter()
            .filter(|s| s.origin == Some((9, 1)))
            .map(StreamMessage::weight)
            .sum();
        assert_eq!(u64::from(thinned.batch) + folded, 64);
    }

    #[test]
    fn sketch_seq_numbers_never_collide_across_hops_or_flushes() {
        let mk = |ord| OverloadController::new(cfg().with_keep_every(u64::MAX), ord);
        let (a, b) = (mk(1), mk(2));
        let now = Epoch::from_nanos(0);
        for ctl in [&a, &b] {
            for i in 0..30 {
                ctl.admit(bulk(i, 0), now);
            }
            ctl.admit(bulk(100, 10), now);
        }
        let sa = a.flush_all(now).pop().unwrap().seq.unwrap();
        let sb = b.flush_all(now).pop().unwrap().seq.unwrap();
        assert_ne!(sa, sb, "hop ordinal disambiguates");
        // Re-entering Sample and flushing again bumps the counter.
        for i in 0..30 {
            a.admit(bulk(200 + i, 0), now);
        }
        a.admit(bulk(300, 10), now);
        let sa2 = a.flush_all(now).pop().unwrap().seq.unwrap();
        assert_ne!(sa, sa2, "per-key counter never reuses a key");
    }
}
