//! LDMS daemons (`ldmsd`) and the aggregation topology.
//!
//! Mirrors the paper's Section V.C deployment: sampler daemons on the
//! compute nodes, one first-level aggregator on the head node (UGNI
//! transport), and a second-level aggregator on the remote analysis
//! cluster (Shirley) where the store plugins subscribe.

use crate::stream::{StreamHub, StreamMessage, StreamSink, StreamStats};
use crate::transport::TransportLink;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Role of a daemon in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonRole {
    /// Compute-node daemon running sampler plugins.
    Sampler,
    /// First-level aggregator (head node).
    AggregatorL1,
    /// Second-level aggregator (remote cluster).
    AggregatorL2,
}

/// One LDMS daemon.
pub struct Ldmsd {
    name: String,
    role: DaemonRole,
    hub: StreamHub,
    upstream: RwLock<Option<(TransportLink, Arc<Ldmsd>)>>,
}

impl Ldmsd {
    /// Creates a daemon with no upstream.
    pub fn new(name: &str, role: DaemonRole) -> Arc<Self> {
        Arc::new(Self {
            name: name.to_string(),
            role,
            hub: StreamHub::new(),
            upstream: RwLock::new(None),
        })
    }

    /// The daemon's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The daemon's role.
    pub fn role(&self) -> DaemonRole {
        self.role
    }

    /// Connects this daemon's push target.
    pub fn connect_upstream(&self, link: TransportLink, target: Arc<Ldmsd>) {
        *self.upstream.write() = Some((link, target));
    }

    /// Subscribes a sink to a stream tag at this daemon.
    pub fn subscribe(&self, tag: &str, sink: Arc<dyn StreamSink>) {
        self.hub.subscribe(tag, sink);
    }

    /// Local stream statistics.
    pub fn stream_stats(&self) -> &StreamStats {
        self.hub.stats()
    }

    /// Receives a message: delivers to local subscribers, then pushes
    /// upstream (best effort — a dropped carry is not retried).
    pub fn receive(&self, msg: StreamMessage) {
        self.hub.dispatch(&msg);
        let upstream = self.upstream.read();
        if let Some((link, target)) = upstream.as_ref() {
            if let Some(carried) = link.carry(msg) {
                target.receive(carried);
            }
        }
    }
}

impl std::fmt::Debug for Ldmsd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ldmsd")
            .field("name", &self.name)
            .field("role", &self.role)
            .finish()
    }
}

/// The assembled two-level aggregation network of the paper:
/// compute-node daemons → head-node L1 aggregator → remote L2
/// aggregator.
pub struct LdmsNetwork {
    nodes: HashMap<String, Arc<Ldmsd>>,
    l1: Arc<Ldmsd>,
    l2: Arc<Ldmsd>,
}

impl LdmsNetwork {
    /// Builds the network for the given compute-node names.
    pub fn build(node_names: &[String]) -> Self {
        let l2 = Ldmsd::new("shirley-agg", DaemonRole::AggregatorL2);
        let l1 = Ldmsd::new("voltrino-head", DaemonRole::AggregatorL1);
        l1.connect_upstream(TransportLink::site_network(), l2.clone());
        let mut nodes = HashMap::with_capacity(node_names.len());
        for n in node_names {
            let d = Ldmsd::new(n, DaemonRole::Sampler);
            d.connect_upstream(TransportLink::ugni(), l1.clone());
            nodes.insert(n.clone(), d);
        }
        Self { nodes, l1, l2 }
    }

    /// The first-level (head node) aggregator.
    pub fn l1(&self) -> &Arc<Ldmsd> {
        &self.l1
    }

    /// The second-level (remote cluster) aggregator — where store
    /// plugins subscribe.
    pub fn l2(&self) -> &Arc<Ldmsd> {
        &self.l2
    }

    /// The daemon on a compute node, if present.
    pub fn node(&self, name: &str) -> Option<&Arc<Ldmsd>> {
        self.nodes.get(name)
    }

    /// Number of compute-node daemons.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Publishes a message from a compute node into the pipeline. An
    /// unknown producer publishes directly at L1 (matching LDMS's
    /// tolerance for external stream sources).
    pub fn publish(&self, msg: StreamMessage) {
        match self.nodes.get(msg.producer.as_ref()) {
            Some(d) => d.receive(msg),
            None => self.l1.receive(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{BufferSink, MsgFormat};
    use iosim_time::Epoch;

    fn msg(producer: &str, data: &str) -> StreamMessage {
        StreamMessage::new(
            "darshanConnector",
            MsgFormat::Json,
            data.to_string(),
            producer,
            Epoch::from_secs(100),
        )
    }

    fn network() -> LdmsNetwork {
        LdmsNetwork::build(&["nid00040".into(), "nid00041".into()])
    }

    #[test]
    fn message_traverses_two_hops_to_l2() {
        let net = network();
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        net.publish(msg("nid00040", "{\"op\":\"write\"}"));
        let got = sink.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].hops, 2);
        assert!(got[0].recv_time > got[0].publish_time);
    }

    #[test]
    fn subscriber_at_l1_sees_messages_before_l2_delay() {
        let net = network();
        let at_l1 = BufferSink::new();
        let at_l2 = BufferSink::new();
        net.l1().subscribe("darshanConnector", at_l1.clone());
        net.l2().subscribe("darshanConnector", at_l2.clone());
        net.publish(msg("nid00041", "{}"));
        let m1 = &at_l1.snapshot()[0];
        let m2 = &at_l2.snapshot()[0];
        assert!(m1.recv_time < m2.recv_time);
        assert_eq!(m1.hops, 1);
    }

    #[test]
    fn unknown_producer_enters_at_l1() {
        let net = network();
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        net.publish(msg("external-host", "{}"));
        let got = sink.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].hops, 1); // only the L1→L2 hop
    }

    #[test]
    fn node_daemon_counts_published_messages() {
        let net = network();
        net.publish(msg("nid00040", "{}"));
        net.publish(msg("nid00040", "{}"));
        assert_eq!(net.node("nid00040").unwrap().stream_stats().published(), 2);
        assert_eq!(net.node("nid00041").unwrap().stream_stats().published(), 0);
        // L1 saw both; L2 saw both.
        assert_eq!(net.l1().stream_stats().published(), 2);
        assert_eq!(net.l2().stream_stats().published(), 2);
    }

    #[test]
    fn concurrent_publishers_all_arrive() {
        let net = Arc::new(LdmsNetwork::build(
            &(0..8).map(|i| format!("nid{i:05}")).collect::<Vec<_>>(),
        ));
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        std::thread::scope(|s| {
            for i in 0..8 {
                let net = net.clone();
                s.spawn(move || {
                    for j in 0..50 {
                        net.publish(msg(&format!("nid{i:05}"), &format!("{{\"n\":{j}}}")));
                    }
                });
            }
        });
        assert_eq!(sink.len(), 400);
    }
}
