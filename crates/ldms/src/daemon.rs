//! LDMS daemons (`ldmsd`) and the aggregation topology.
//!
//! Mirrors the paper's Section V.C deployment: sampler daemons on the
//! compute nodes, one first-level aggregator on the head node (UGNI
//! transport), and a second-level aggregator on the remote analysis
//! cluster (Shirley) where the store plugins subscribe.
//!
//! Beyond the paper's always-up, fire-and-forget pipeline, each daemon
//! carries a [`Lifecycle`] (crash/restart windows in virtual time) and
//! each upstream connection a bounded [`RetryQueue`]: a send that fails
//! detectably (link flapped down, target daemon crashed) or silently
//! (transport loss) may be parked and retried with exponential backoff,
//! depending on the hop's [`QueueConfig`]. Every message entering the
//! network through [`LdmsNetwork::publish`] is accounted for exactly
//! once in the shared [`DeliveryLedger`] — delivered at the terminal
//! daemon, or lost with a `(hop, cause)` attribution. The default
//! [`QueueConfig::best_effort`] keeps the paper's semantics untouched.
//!
//! Forwarding walks the upstream chain iteratively (not recursively),
//! with cycle detection: a misconfigured topology drops the looping
//! message and counts it instead of overflowing the stack.

use crate::fault::{FaultScript, FaultSpec, Lifecycle};
use crate::ledger::{DeliveryLedger, LossCause};
use crate::queue::{QueueConfig, QueueEntry, RetryQueue};
use crate::stream::{StreamHub, StreamMessage, StreamSink, StreamStats};
use crate::transport::TransportLink;
use iosim_time::Epoch;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Role of a daemon in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonRole {
    /// Compute-node daemon running sampler plugins.
    Sampler,
    /// First-level aggregator (head node).
    AggregatorL1,
    /// Second-level aggregator (remote cluster).
    AggregatorL2,
}

/// One upstream connection: the link, its target, and the bounded
/// store-and-forward queue guarding the hop.
struct Upstream {
    link: TransportLink,
    target: Arc<Ldmsd>,
    queue: RetryQueue,
    /// Loss-attribution label for the link (`"<owner>/<link>"`).
    link_hop: String,
    /// Loss-attribution label for the queue (`"<owner>/queue"`).
    queue_hop: String,
}

/// One LDMS daemon.
pub struct Ldmsd {
    name: String,
    role: DaemonRole,
    hub: StreamHub,
    lifecycle: Lifecycle,
    ledger: Arc<DeliveryLedger>,
    upstream: RwLock<Option<Upstream>>,
}

impl Ldmsd {
    /// Creates a daemon with no upstream and a private ledger.
    pub fn new(name: &str, role: DaemonRole) -> Arc<Self> {
        Self::with_ledger(name, role, Arc::new(DeliveryLedger::new()))
    }

    /// Creates a daemon sharing a network-wide delivery ledger.
    pub fn with_ledger(name: &str, role: DaemonRole, ledger: Arc<DeliveryLedger>) -> Arc<Self> {
        Arc::new(Self {
            name: name.to_string(),
            role,
            hub: StreamHub::new(),
            lifecycle: Lifecycle::new(),
            ledger,
            upstream: RwLock::new(None),
        })
    }

    /// The daemon's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The daemon's role.
    pub fn role(&self) -> DaemonRole {
        self.role
    }

    /// The delivery ledger this daemon reports to.
    pub fn ledger(&self) -> &Arc<DeliveryLedger> {
        &self.ledger
    }

    /// Connects this daemon's push target with best-effort semantics
    /// (the paper's behavior: no retry, no queueing).
    pub fn connect_upstream(&self, link: TransportLink, target: Arc<Ldmsd>) {
        self.connect_upstream_with(link, target, QueueConfig::default());
    }

    /// Connects this daemon's push target with an explicit retry-queue
    /// configuration for the hop.
    pub fn connect_upstream_with(
        &self,
        link: TransportLink,
        target: Arc<Ldmsd>,
        config: QueueConfig,
    ) {
        let link_hop = format!("{}/{}", self.name, link.name);
        let queue_hop = format!("{}/queue", self.name);
        *self.upstream.write() = Some(Upstream {
            queue: RetryQueue::new(config),
            link,
            target,
            link_hop,
            queue_hop,
        });
    }

    /// Schedules a crash/restart window `[from, until)` for this
    /// daemon. While down it neither delivers locally nor forwards;
    /// senders with retry queues park messages until the restart.
    pub fn schedule_outage(&self, from: Epoch, until: Epoch) {
        self.lifecycle.schedule_down(from, until);
    }

    /// True when the daemon is up at `t`.
    pub fn is_up(&self, t: Epoch) -> bool {
        self.lifecycle.is_up(t)
    }

    /// Schedules a flap window on the upstream link. Returns false if
    /// this daemon has no upstream.
    pub fn schedule_link_flap(&self, from: Epoch, until: Epoch) -> bool {
        match self.upstream.read().as_ref() {
            Some(up) => {
                up.link.schedule_flap(from, until);
                true
            }
            None => false,
        }
    }

    /// Enables seeded probabilistic loss on the upstream link. Returns
    /// false if this daemon has no upstream.
    pub fn set_link_loss_prob(&self, prob: f64, seed: u64) -> bool {
        match self.upstream.read().as_ref() {
            Some(up) => {
                up.link.set_loss_prob(prob, seed);
                true
            }
            None => false,
        }
    }

    /// Enables deterministic every-`n`-th loss on the upstream link.
    /// Returns false if this daemon has no upstream.
    pub fn set_link_drop_every(&self, every: u64) -> bool {
        match self.upstream.read().as_ref() {
            Some(up) => {
                up.link.set_drop_every(every);
                true
            }
            None => false,
        }
    }

    /// Subscribes a sink to a stream tag at this daemon.
    pub fn subscribe(&self, tag: &str, sink: Arc<dyn StreamSink>) {
        self.hub.subscribe(tag, sink);
    }

    /// Number of sinks subscribed to `tag` at this daemon (topology
    /// introspection, used by the `iolint` diagnostics passes).
    pub fn subscriber_count(&self, tag: &str) -> usize {
        self.hub.subscriber_count(tag)
    }

    /// The daemon this one forwards to, if any.
    pub fn upstream_target(&self) -> Option<Arc<Ldmsd>> {
        self.upstream.read().as_ref().map(|u| u.target.clone())
    }

    /// Name of the upstream transport link, if any.
    pub fn upstream_link_name(&self) -> Option<String> {
        self.upstream.read().as_ref().map(|u| u.link.name.clone())
    }

    /// The retry-queue configuration guarding the upstream hop, if any.
    pub fn queue_config(&self) -> Option<QueueConfig> {
        self.upstream
            .read()
            .as_ref()
            .map(|u| u.queue.config().clone())
    }

    /// Local stream statistics.
    pub fn stream_stats(&self) -> &StreamStats {
        self.hub.stats()
    }

    /// Messages currently parked in this daemon's retry queue.
    pub fn queued(&self) -> usize {
        self.upstream.read().as_ref().map_or(0, |u| u.queue.len())
    }

    /// Earliest virtual instant at which this daemon's retry queue has
    /// something actionable (a retry due or a deadline expiring).
    pub fn queue_next_event(&self) -> Option<Epoch> {
        self.upstream
            .read()
            .as_ref()
            .and_then(|u| u.queue.next_event())
    }

    /// Receives a message: delivers to local subscribers, then walks
    /// the upstream chain iteratively. Failed hops are parked for
    /// retry or attributed to the ledger, per each hop's queue
    /// configuration.
    pub fn receive(&self, msg: StreamMessage) {
        let mut visited: Vec<*const Ldmsd> = Vec::with_capacity(4);
        let mut hop = self.process_hop(msg, &mut visited);
        while let Some((daemon, carried)) = hop {
            hop = daemon.process_hop(carried, &mut visited);
        }
    }

    /// One hop of the chain walk: local dispatch plus the attempt to
    /// forward. Returns the next daemon and the carried message when
    /// the hop succeeded; `None` when the walk ends here (terminal
    /// daemon, parked for retry, or attributed loss).
    fn process_hop(
        &self,
        msg: StreamMessage,
        visited: &mut Vec<*const Ldmsd>,
    ) -> Option<(Arc<Ldmsd>, StreamMessage)> {
        let me = self as *const Ldmsd;
        if visited.contains(&me) {
            self.ledger.record_loss(&self.name, LossCause::CycleDropped);
            return None;
        }
        visited.push(me);
        let now = msg.recv_time;
        if !self.lifecycle.is_up(now) {
            // The message arrived at a crashed daemon (it was in
            // flight when the crash hit, or was injected directly).
            self.ledger.record_loss(&self.name, LossCause::DaemonDown);
            return None;
        }
        let fanout = self.hub.dispatch(&msg);
        let guard = self.upstream.read();
        match guard.as_ref() {
            None => {
                // Terminal daemon: this is where end-to-end delivery
                // is decided. Intermediate dispatches above are taps.
                if fanout > 0 {
                    self.ledger.record_delivered();
                } else {
                    self.ledger.record_loss(&self.name, LossCause::NoSubscriber);
                }
                None
            }
            Some(up) => self.try_send(up, msg, 0, None, now),
        }
    }

    /// Attempts one send over the upstream hop. `prior_attempts` is
    /// how many attempts the message has already consumed (0 for a
    /// fresh message); `expire` carries a block-with-deadline sojourn
    /// deadline across re-parks.
    fn try_send(
        &self,
        up: &Upstream,
        msg: StreamMessage,
        prior_attempts: u32,
        expire: Option<Epoch>,
        now: Epoch,
    ) -> Option<(Arc<Ldmsd>, StreamMessage)> {
        let attempts = prior_attempts + 1;
        let cfg = up.queue.config();
        let retryable = cfg.retries_enabled() && attempts < cfg.max_attempts;

        // Detectable failures: the sender can see a flapped link or a
        // crashed peer (the connection refuses), so the message is not
        // offered to the link at all.
        let detected = if up.link.is_down(now) {
            Some((LossCause::LinkLoss, up.link.next_up(now)))
        } else if !up.target.lifecycle.is_up(now) {
            Some((LossCause::DaemonDown, up.target.lifecycle.next_up(now)))
        } else {
            None
        };
        if let Some((cause, component_up)) = detected {
            if retryable {
                // Retry no earlier than the component's scheduled
                // recovery — reconnect-on-restart, not blind polling.
                let next_attempt = up.queue.backoff_after(attempts, now).max(component_up);
                self.park(
                    up,
                    QueueEntry {
                        msg,
                        attempts,
                        next_attempt,
                        expire,
                        cause,
                    },
                    now,
                );
            } else {
                match cause {
                    LossCause::DaemonDown => {
                        self.ledger.record_loss(up.target.name(), cause);
                    }
                    _ => self.ledger.record_loss(&up.link_hop, cause),
                }
            }
            return None;
        }

        // Silent loss: the link accepts the message and may drop it in
        // transit. Clone first only when a retry could use the copy.
        let backup = if retryable { Some(msg.clone()) } else { None };
        match up.link.carry(msg) {
            Some(carried) => Some((up.target.clone(), carried)),
            None => {
                match backup {
                    Some(m) => {
                        let next_attempt = up.queue.backoff_after(attempts, now);
                        self.park(
                            up,
                            QueueEntry {
                                msg: m,
                                attempts,
                                next_attempt,
                                expire,
                                cause: LossCause::LinkLoss,
                            },
                            now,
                        );
                    }
                    None => self.ledger.record_loss(&up.link_hop, LossCause::LinkLoss),
                }
                None
            }
        }
    }

    /// Parks an entry in the hop's queue, attributing any messages the
    /// overflow policy evicted to admit it.
    fn park(&self, up: &Upstream, entry: QueueEntry, now: Epoch) {
        for evicted in up.queue.push(entry, now) {
            self.attribute(up, evicted);
        }
    }

    /// Records an abandoned queue entry as lost, attributed to the hop
    /// responsible for its final failure cause.
    fn attribute(&self, up: &Upstream, entry: QueueEntry) {
        match entry.cause {
            LossCause::LinkLoss => self.ledger.record_loss(&up.link_hop, entry.cause),
            LossCause::DaemonDown => self.ledger.record_loss(up.target.name(), entry.cause),
            _ => self.ledger.record_loss(&up.queue_hop, entry.cause),
        }
    }

    /// Drains this daemon's retry queue as of virtual instant `now`:
    /// expires over-deadline entries, then re-attempts every entry
    /// whose retry time has come. Successful re-sends continue walking
    /// the chain from the target.
    pub fn pump(&self, now: Epoch) {
        let continuations = {
            let guard = self.upstream.read();
            let Some(up) = guard.as_ref() else { return };
            if up.queue.is_empty() {
                return;
            }
            for expired in up.queue.take_expired(now) {
                self.attribute(up, expired);
            }
            let mut conts = Vec::new();
            while let Some(mut entry) = up.queue.pop_due(now) {
                // A buffered message cannot arrive before the retry
                // that re-sent it: bump its clock to the drain time.
                entry.msg.recv_time = entry.msg.recv_time.max(now);
                if let Some(c) = self.try_send(up, entry.msg, entry.attempts, entry.expire, now) {
                    conts.push(c);
                }
            }
            conts
        };
        for (target, carried) in continuations {
            target.receive(carried);
        }
    }

    /// Abandons everything still parked, attributing each entry to the
    /// hop of its last failure. Returns how many were abandoned. Used
    /// when settling a campaign past its horizon.
    pub fn abandon_queue(&self) -> usize {
        let guard = self.upstream.read();
        let Some(up) = guard.as_ref() else { return 0 };
        let entries = up.queue.drain_all();
        let n = entries.len();
        for e in entries {
            self.attribute(up, e);
        }
        n
    }
}

impl std::fmt::Debug for Ldmsd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ldmsd")
            .field("name", &self.name)
            .field("role", &self.role)
            .finish()
    }
}

/// The assembled two-level aggregation network of the paper:
/// compute-node daemons → head-node L1 aggregator → remote L2
/// aggregator. All daemons share one [`DeliveryLedger`].
pub struct LdmsNetwork {
    nodes: HashMap<String, Arc<Ldmsd>>,
    /// Deterministic pump/settle order: sorted samplers, then L1, L2.
    ordered: Vec<Arc<Ldmsd>>,
    l1: Arc<Ldmsd>,
    l2: Arc<Ldmsd>,
    ledger: Arc<DeliveryLedger>,
}

impl LdmsNetwork {
    /// Builds the network for the given compute-node names with the
    /// paper's best-effort hop semantics.
    pub fn build(node_names: &[String]) -> Self {
        Self::build_with(node_names, QueueConfig::default())
    }

    /// Builds the network with an explicit retry-queue configuration
    /// applied to every hop. Each hop's jitter RNG is decorrelated by
    /// deriving its seed from the configured seed and the hop index.
    pub fn build_with(node_names: &[String], queue: QueueConfig) -> Self {
        let ledger = Arc::new(DeliveryLedger::new());
        let l2 = Ldmsd::with_ledger("shirley-agg", DaemonRole::AggregatorL2, ledger.clone());
        let l1 = Ldmsd::with_ledger("voltrino-head", DaemonRole::AggregatorL1, ledger.clone());
        l1.connect_upstream_with(
            TransportLink::site_network(),
            l2.clone(),
            queue
                .clone()
                .with_seed(queue.seed ^ crate::fault::mix64(u64::MAX)),
        );
        let mut sorted: Vec<String> = node_names.to_vec();
        sorted.sort();
        let mut nodes = HashMap::with_capacity(sorted.len());
        let mut ordered = Vec::with_capacity(sorted.len() + 2);
        for (i, n) in sorted.iter().enumerate() {
            let d = Ldmsd::with_ledger(n, DaemonRole::Sampler, ledger.clone());
            d.connect_upstream_with(
                TransportLink::ugni(),
                l1.clone(),
                queue
                    .clone()
                    .with_seed(queue.seed ^ crate::fault::mix64(i as u64)),
            );
            nodes.insert(n.clone(), d.clone());
            ordered.push(d);
        }
        ordered.push(l1.clone());
        ordered.push(l2.clone());
        Self {
            nodes,
            ordered,
            l1,
            l2,
            ledger,
        }
    }

    /// The first-level (head node) aggregator.
    pub fn l1(&self) -> &Arc<Ldmsd> {
        &self.l1
    }

    /// The second-level (remote cluster) aggregator — where store
    /// plugins subscribe.
    pub fn l2(&self) -> &Arc<Ldmsd> {
        &self.l2
    }

    /// The daemon on a compute node, if present.
    pub fn node(&self, name: &str) -> Option<&Arc<Ldmsd>> {
        self.nodes.get(name)
    }

    /// Number of compute-node daemons.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Every daemon in deterministic order: sorted samplers, then the
    /// L1 and L2 aggregators (topology introspection for `iolint`).
    pub fn daemons(&self) -> &[Arc<Ldmsd>] {
        &self.ordered
    }

    /// The network-wide delivery ledger.
    pub fn ledger(&self) -> &Arc<DeliveryLedger> {
        &self.ledger
    }

    /// Resolves a fault-script component name: a compute-node name, an
    /// aggregator host name, or the aliases `"l1"` / `"l2"`.
    fn resolve(&self, name: &str) -> Option<&Arc<Ldmsd>> {
        match name {
            "l1" => Some(&self.l1),
            "l2" => Some(&self.l2),
            n if n == self.l1.name() => Some(&self.l1),
            n if n == self.l2.name() => Some(&self.l2),
            n => self.nodes.get(n),
        }
    }

    /// Applies a chaos script to the network. Returns how many faults
    /// were applied; specs naming unknown components are skipped (and
    /// not counted), so a script can be shared across topologies.
    pub fn apply_faults(&self, script: &FaultScript) -> usize {
        let mut applied = 0;
        for spec in script.specs() {
            let ok = match spec {
                FaultSpec::DaemonOutage {
                    daemon,
                    from,
                    until,
                } => self
                    .resolve(daemon)
                    .map(|d| d.schedule_outage(*from, *until))
                    .is_some(),
                FaultSpec::LinkFlap {
                    daemon,
                    from,
                    until,
                } => self
                    .resolve(daemon)
                    .is_some_and(|d| d.schedule_link_flap(*from, *until)),
                FaultSpec::LinkLossProb { daemon, prob, seed } => self
                    .resolve(daemon)
                    .is_some_and(|d| d.set_link_loss_prob(*prob, *seed)),
                FaultSpec::LinkDropEvery { daemon, every } => self
                    .resolve(daemon)
                    .is_some_and(|d| d.set_link_drop_every(*every)),
            };
            if ok {
                applied += 1;
            }
        }
        applied
    }

    /// Publishes a message from a compute node into the pipeline. An
    /// unknown producer publishes directly at L1 (matching LDMS's
    /// tolerance for external stream sources). Retries that have come
    /// due by the message's publish instant are drained first, so
    /// buffered traffic re-flows in virtual-time order.
    pub fn publish(&self, msg: StreamMessage) {
        self.ledger.record_published();
        self.pump(msg.recv_time);
        match self.nodes.get(msg.producer.as_ref()) {
            Some(d) => d.receive(msg),
            None => self.l1.receive(msg),
        }
    }

    /// Drains every daemon's retry queue as of virtual instant `now`.
    pub fn pump(&self, now: Epoch) {
        for d in &self.ordered {
            d.pump(now);
        }
    }

    /// Runs the network to quiescence: repeatedly advances virtual
    /// time to the next queued retry/deadline event up to `horizon`,
    /// then abandons (and attributes) anything still parked. After
    /// this returns, the ledger balances:
    /// `published == delivered + total_lost`.
    pub fn settle(&self, horizon: Epoch) -> usize {
        loop {
            let next = self
                .ordered
                .iter()
                .filter_map(|d| d.queue_next_event())
                .min();
            match next {
                Some(t) if t <= horizon => self.pump(t),
                _ => break,
            }
        }
        self.ordered.iter().map(|d| d.abandon_queue()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{BufferSink, MsgFormat};
    use iosim_time::Epoch;

    fn msg(producer: &str, data: &str) -> StreamMessage {
        StreamMessage::new(
            "darshanConnector",
            MsgFormat::Json,
            data.to_string(),
            producer,
            Epoch::from_secs(100),
        )
    }

    fn msg_at(producer: &str, at: Epoch) -> StreamMessage {
        StreamMessage::new(
            "darshanConnector",
            MsgFormat::Json,
            "{}".into(),
            producer,
            at,
        )
    }

    fn network() -> LdmsNetwork {
        LdmsNetwork::build(&["nid00040".into(), "nid00041".into()])
    }

    #[test]
    fn message_traverses_two_hops_to_l2() {
        let net = network();
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        net.publish(msg("nid00040", "{\"op\":\"write\"}"));
        let got = sink.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].hops, 2);
        assert!(got[0].recv_time > got[0].publish_time);
        assert!(net.ledger().balances());
        assert_eq!(net.ledger().delivered(), 1);
    }

    #[test]
    fn subscriber_at_l1_sees_messages_before_l2_delay() {
        let net = network();
        let at_l1 = BufferSink::new();
        let at_l2 = BufferSink::new();
        net.l1().subscribe("darshanConnector", at_l1.clone());
        net.l2().subscribe("darshanConnector", at_l2.clone());
        net.publish(msg("nid00041", "{}"));
        let m1 = &at_l1.snapshot()[0];
        let m2 = &at_l2.snapshot()[0];
        assert!(m1.recv_time < m2.recv_time);
        assert_eq!(m1.hops, 1);
    }

    #[test]
    fn unknown_producer_enters_at_l1() {
        let net = network();
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        net.publish(msg("external-host", "{}"));
        let got = sink.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].hops, 1); // only the L1→L2 hop
    }

    #[test]
    fn node_daemon_counts_published_messages() {
        let net = network();
        net.publish(msg("nid00040", "{}"));
        net.publish(msg("nid00040", "{}"));
        assert_eq!(net.node("nid00040").unwrap().stream_stats().published(), 2);
        assert_eq!(net.node("nid00041").unwrap().stream_stats().published(), 0);
        // L1 saw both; L2 saw both.
        assert_eq!(net.l1().stream_stats().published(), 2);
        assert_eq!(net.l2().stream_stats().published(), 2);
    }

    #[test]
    fn concurrent_publishers_all_arrive() {
        let net = Arc::new(LdmsNetwork::build(
            &(0..8).map(|i| format!("nid{i:05}")).collect::<Vec<_>>(),
        ));
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        std::thread::scope(|s| {
            for i in 0..8 {
                let net = net.clone();
                s.spawn(move || {
                    for j in 0..50 {
                        net.publish(msg(&format!("nid{i:05}"), &format!("{{\"n\":{j}}}")));
                    }
                });
            }
        });
        assert_eq!(sink.len(), 400);
        assert_eq!(net.ledger().published(), 400);
        assert_eq!(net.ledger().delivered(), 400);
        assert!(net.ledger().balances());
    }

    #[test]
    fn topology_cycle_is_dropped_not_looped() {
        let ledger = Arc::new(DeliveryLedger::new());
        let a = Ldmsd::with_ledger("a", DaemonRole::AggregatorL1, ledger.clone());
        let b = Ldmsd::with_ledger("b", DaemonRole::AggregatorL1, ledger.clone());
        a.connect_upstream(TransportLink::ugni(), b.clone());
        b.connect_upstream(TransportLink::ugni(), a.clone());
        ledger.record_published();
        a.receive(msg("a", "{}")); // returns instead of recursing forever
        assert_eq!(ledger.lost_with_cause(LossCause::CycleDropped), 1);
        assert!(ledger.balances());
    }

    #[test]
    fn deep_chain_forwards_iteratively() {
        let ledger = Arc::new(DeliveryLedger::new());
        let daemons: Vec<Arc<Ldmsd>> = (0..2000)
            .map(|i| Ldmsd::with_ledger(&format!("d{i}"), DaemonRole::AggregatorL1, ledger.clone()))
            .collect();
        for w in daemons.windows(2) {
            w[0].connect_upstream(TransportLink::ugni(), w[1].clone());
        }
        let sink = BufferSink::new();
        daemons
            .last()
            .unwrap()
            .subscribe("darshanConnector", sink.clone());
        ledger.record_published();
        daemons[0].receive(msg("d0", "{}"));
        let got = sink.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].hops, 1999);
        assert_eq!(ledger.delivered(), 1);
    }

    #[test]
    fn daemon_outage_parks_then_delivers_after_restart() {
        let net = LdmsNetwork::build_with(&["nid0".into()], QueueConfig::reliable());
        let down_from = Epoch::from_secs(100);
        let down_until = Epoch::from_secs(140);
        net.apply_faults(&FaultScript::new().daemon_outage("l2", down_from, down_until));
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());

        net.publish(msg_at("nid0", Epoch::from_secs(120)));
        assert_eq!(sink.len(), 0, "L2 is down; nothing delivered yet");
        assert_eq!(net.l1().queued(), 1, "parked at the L1 hop");
        assert!(!net.ledger().balances(), "in flight, not yet accounted");

        let abandoned = net.settle(Epoch::from_secs(200));
        assert_eq!(abandoned, 0);
        let got = sink.take();
        assert_eq!(got.len(), 1);
        assert!(
            got[0].recv_time >= down_until,
            "delivered only after restart"
        );
        assert_eq!(net.ledger().delivered(), 1);
        assert!(net.ledger().balances());
    }

    #[test]
    fn best_effort_outage_is_attributed_not_buffered() {
        let net = LdmsNetwork::build(&["nid0".into()]);
        net.apply_faults(&FaultScript::new().daemon_outage(
            "l2",
            Epoch::from_secs(100),
            Epoch::from_secs(140),
        ));
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        net.publish(msg_at("nid0", Epoch::from_secs(120)));
        assert_eq!(sink.len(), 0);
        assert_eq!(net.l1().queued(), 0, "best effort: nothing parked");
        assert_eq!(net.ledger().lost_with_cause(LossCause::DaemonDown), 1);
        assert_eq!(net.ledger().lost_at("shirley-agg"), 1);
        assert!(net.ledger().balances());
    }

    #[test]
    fn settle_abandons_past_horizon_and_balances() {
        let net = LdmsNetwork::build_with(&["nid0".into()], QueueConfig::reliable());
        // L2 never comes back within the horizon.
        net.apply_faults(&FaultScript::new().daemon_outage(
            "l2",
            Epoch::from_secs(100),
            Epoch::from_secs(10_000),
        ));
        net.l2().subscribe("darshanConnector", BufferSink::new());
        net.publish(msg_at("nid0", Epoch::from_secs(120)));
        let abandoned = net.settle(Epoch::from_secs(200));
        assert_eq!(abandoned, 1);
        assert_eq!(net.ledger().lost_with_cause(LossCause::DaemonDown), 1);
        assert!(net.ledger().balances());
    }
}
