//! LDMS daemons (`ldmsd`) and the aggregation topology.
//!
//! Mirrors the paper's Section V.C deployment: sampler daemons on the
//! compute nodes, one first-level aggregator on the head node (UGNI
//! transport), and a second-level aggregator on the remote analysis
//! cluster (Shirley) where the store plugins subscribe.
//!
//! Beyond the paper's always-up, fire-and-forget pipeline, each daemon
//! carries a [`Lifecycle`] (crash/restart windows in virtual time) and
//! each upstream connection a bounded [`RetryQueue`]: a send that fails
//! detectably (link flapped down, target daemon crashed) or silently
//! (transport loss) may be parked and retried with exponential backoff,
//! depending on the hop's [`QueueConfig`]. Every message entering the
//! network through [`LdmsNetwork::publish`] is accounted for exactly
//! once in the shared [`DeliveryLedger`] — delivered at the terminal
//! daemon, or lost with a `(hop, cause)` attribution. The default
//! [`QueueConfig::best_effort`] keeps the paper's semantics untouched.
//!
//! The crash-recovery layer adds three opt-in mechanisms on top:
//!
//! * **Durable WALs** ([`crate::wal`]) — a hop configured with a
//!   [`WalConfig`] journals every parked message; a crash-stop fault
//!   ([`crate::FaultSpec::Crash`]) destroys the volatile queue but the
//!   daemon replays durable records at restart.
//! * **Ranked upstream routes with heartbeat election** — a daemon may
//!   hold several upstream routes; after [`HeartbeatConfig`] misses
//!   the active route is declared dead and the best live standby is
//!   elected, with a hold-time hysteresis before failing back.
//! * **Idempotent terminal delivery** — sequenced messages are keyed
//!   `(producer, job, rank, seq)`; a WAL replay re-delivering an
//!   already-delivered key is suppressed and counted, never double
//!   counted.
//!
//! Forwarding walks the upstream chain iteratively (not recursively),
//! with cycle detection: a misconfigured topology drops the looping
//! message and counts it instead of overflowing the stack.

use crate::fault::{FaultScript, FaultSpec, Lifecycle};
use crate::heartbeat::HeartbeatConfig;
use crate::ledger::{DeliveryLedger, LossCause};
use crate::overload::{OverloadConfig, OverloadController, OverloadState, OverloadStats};
use crate::queue::{QueueConfig, QueueEntry, RetryQueue};
use crate::stream::{StreamHub, StreamMessage, StreamSink, StreamStats};
use crate::transport::TransportLink;
use crate::wal::{WalConfig, WalStats, WriteAheadLog};
use iosim_telemetry::{
    Counter, CrashDump, DiagHub, FaultKind, FlightEvent, FlightRecorder, Gauge, HealthState,
    Histogram, HopKind, HubEventKind, Telemetry,
};
use iosim_time::{Epoch, SimDuration};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Role of a daemon in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonRole {
    /// Compute-node daemon running sampler plugins.
    Sampler,
    /// First-level aggregator (head node).
    AggregatorL1,
    /// Second-level aggregator (remote cluster).
    AggregatorL2,
}

/// One candidate upstream route: a link and its target daemon.
struct Route {
    link: TransportLink,
    target: Arc<Ldmsd>,
    /// Loss-attribution label for the link (`"<owner>/<link>"`).
    link_hop: String,
}

impl Route {
    /// True when both the link and the target are up at `t`.
    fn is_up(&self, t: Epoch) -> bool {
        !self.link.is_down(t) && self.target.lifecycle.is_up(t)
    }

    /// Earliest instant `>= t` at which the route is usable again.
    fn next_up(&self, t: Epoch) -> Epoch {
        self.link.next_up(t).max(self.target.lifecycle.next_up(t))
    }

    /// Start of the contiguous window in which the route has been
    /// unusable at `t` (`None` when up).
    fn down_since(&self, t: Epoch) -> Option<Epoch> {
        let link = self.link.down_since(t);
        let target = self.target.lifecycle.down_since(t);
        match (link, target) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Instant since which the route has been continuously usable at
    /// `t` (`None` when down).
    fn up_since(&self, t: Epoch) -> Option<Epoch> {
        Some(
            self.link
                .up_since(t)?
                .max(self.target.lifecycle.up_since(t)?),
        )
    }
}

/// A daemon's upstream connection: the ranked route set, the shared
/// bounded store-and-forward queue guarding the hop, and the optional
/// write-ahead log that makes the queue crash-durable.
struct UpstreamSet {
    /// Routes in preference order; index 0 is the primary.
    routes: Vec<Route>,
    queue: RetryQueue,
    /// Loss-attribution label for the queue (`"<owner>/queue"`).
    queue_hop: String,
    wal: Option<WriteAheadLog>,
    hb: HeartbeatConfig,
    /// Index of the currently elected route.
    active: AtomicUsize,
    failovers: AtomicU64,
    failbacks: AtomicU64,
    max_failover_latency_ns: AtomicU64,
}

impl UpstreamSet {
    fn active_idx(&self) -> usize {
        self.active
            .load(Ordering::Relaxed)
            .min(self.routes.len().saturating_sub(1))
    }

    /// Heartbeat-driven route election at `now`. The single-route
    /// (paper) topology short-circuits to the primary, so the default
    /// path pays one atomic load.
    fn elect(&self, now: Epoch) -> usize {
        let cur = self.active_idx();
        if self.routes.len() <= 1 {
            return cur;
        }
        let route = &self.routes[cur];
        if route.is_up(now) {
            // Failback: prefer the best-ranked route, but only after
            // it has been up continuously for the hold time, so a
            // flapping primary does not bounce traffic (hysteresis).
            for (i, r) in self.routes.iter().enumerate().take(cur) {
                if let Some(since) = r.up_since(now) {
                    if since + self.hb.hold <= now {
                        self.active.store(i, Ordering::Relaxed);
                        self.failbacks.fetch_add(1, Ordering::Relaxed);
                        return i;
                    }
                }
            }
            return cur;
        }
        // The active route is down: declare it dead only after the
        // configured number of missed heartbeats.
        let down_since = route.down_since(now).unwrap_or(now);
        if now < down_since + self.hb.detect_after() {
            return cur;
        }
        // Elect the best-ranked live alternative.
        for (i, r) in self.routes.iter().enumerate() {
            if i != cur && r.is_up(now) {
                self.active.store(i, Ordering::Relaxed);
                self.failovers.fetch_add(1, Ordering::Relaxed);
                self.max_failover_latency_ns
                    .fetch_max(now.since(down_since).as_nanos(), Ordering::Relaxed);
                return i;
            }
        }
        cur
    }

    /// Earliest instant at which a parked entry could flow again:
    /// the failed component's recovery, or — with standbys — the
    /// heartbeat detection instant that would elect another route.
    fn recovery_instant(&self, route: &Route, component_up: Epoch, now: Epoch) -> Epoch {
        if self.routes.len() <= 1 {
            return component_up;
        }
        let down_since = route.down_since(now).unwrap_or(now);
        let detect_at = down_since + self.hb.detect_after();
        if detect_at > now {
            component_up.min(detect_at)
        } else {
            // Detection already fired yet election kept this route:
            // every alternative is down too. Wait for the earliest
            // recovery anywhere in the route set.
            self.routes
                .iter()
                .map(|r| r.next_up(now))
                .min()
                .unwrap_or(component_up)
        }
    }
}

/// One scripted crash-stop window and its processing state.
struct CrashWindow {
    at: Epoch,
    restart: Epoch,
    crashed: bool,
    replayed: bool,
}

/// Per-daemon telemetry handles, resolved once at attach time so the
/// hot path pays one atomic bump per metric instead of a registry
/// lookup. Absent entirely (the default) telemetry costs one relaxed
/// atomic load per hook site.
struct DaemonTelemetry {
    hub: Arc<Telemetry>,
    /// The live diagnosis hub, resolved once at attach time (absent
    /// when telemetry runs without a hub).
    diag: Option<Arc<DiagHub>>,
    /// Last published health state (dense [`HealthState`] encoding),
    /// so transitions publish exactly once.
    last_health: AtomicU8,
    /// Cached span site label — the daemon name, shared by every span
    /// this daemon records.
    site: Arc<str>,
    flight: Arc<FlightRecorder>,
    forwarded: Arc<Counter>,
    ingested: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    parked_frames: Arc<Counter>,
    retries: Arc<Counter>,
    retry_backoff_ms: Arc<Histogram>,
    wal_replayed: Arc<Counter>,
    heartbeat_misses: Arc<Counter>,
    overload_depth: Arc<Gauge>,
    overload_throttled: Arc<Gauge>,
    overload_spilled: Arc<Gauge>,
    overload_folded: Arc<Gauge>,
    overload_summaries: Arc<Gauge>,
}

/// One LDMS daemon.
pub struct Ldmsd {
    name: String,
    role: DaemonRole,
    hub: StreamHub,
    lifecycle: Lifecycle,
    ledger: Arc<DeliveryLedger>,
    upstream: RwLock<Option<UpstreamSet>>,
    crashes: Mutex<Vec<CrashWindow>>,
    has_crashes: AtomicBool,
    crash_count: AtomicU64,
    tel: RwLock<Option<Arc<DaemonTelemetry>>>,
    has_tel: AtomicBool,
    crash_dumps: Mutex<Vec<CrashDump>>,
    overload: RwLock<Option<Arc<OverloadController>>>,
    has_overload: AtomicBool,
}

impl Ldmsd {
    /// Creates a daemon with no upstream and a private ledger.
    pub fn new(name: &str, role: DaemonRole) -> Arc<Self> {
        Self::with_ledger(name, role, Arc::new(DeliveryLedger::new()))
    }

    /// Creates a daemon sharing a network-wide delivery ledger.
    pub fn with_ledger(name: &str, role: DaemonRole, ledger: Arc<DeliveryLedger>) -> Arc<Self> {
        Arc::new(Self {
            name: name.to_string(),
            role,
            hub: StreamHub::new(),
            lifecycle: Lifecycle::new(),
            ledger,
            upstream: RwLock::new(None),
            crashes: Mutex::new(Vec::new()),
            has_crashes: AtomicBool::new(false),
            crash_count: AtomicU64::new(0),
            tel: RwLock::new(None),
            has_tel: AtomicBool::new(false),
            crash_dumps: Mutex::new(Vec::new()),
            overload: RwLock::new(None),
            has_overload: AtomicBool::new(false),
        })
    }

    /// Attaches an overload controller to this daemon's forwarding
    /// hop. `hop_ord` must be unique across the network (it
    /// disambiguates summary-sketch sequence numbers between hops).
    /// Without a controller (the default) every admission is a
    /// pass-through — byte-identical to the uncontrolled pipeline.
    pub fn attach_overload(&self, config: OverloadConfig, hop_ord: u64) {
        *self.overload.write() = Some(Arc::new(OverloadController::new(config, hop_ord)));
        self.has_overload.store(true, Ordering::Relaxed);
    }

    /// The attached overload controller, when one is configured.
    fn overload_ctl(&self) -> Option<Arc<OverloadController>> {
        if !self.has_overload.load(Ordering::Relaxed) {
            return None;
        }
        self.overload.read().clone()
    }

    /// Counter snapshot of the hop's overload controller, if attached.
    pub fn overload_stats(&self) -> Option<OverloadStats> {
        self.overload_ctl().map(|c| c.stats())
    }

    /// The overload policy guarding this hop, if one is attached.
    /// Static analysis introspects the live ladder (service rate,
    /// watermarks, window) instead of guessing from conf defaults.
    pub fn overload_config(&self) -> Option<OverloadConfig> {
        self.overload_ctl().map(|c| c.config().clone())
    }

    /// Mirrors the overload controller's counters into the telemetry
    /// registry's gauges (no-op unless both are attached). Called at
    /// report/exposition points, not per admission.
    pub fn sync_overload_telemetry(&self) {
        let (Some(tel), Some(st)) = (self.tel(), self.overload_stats()) else {
            return;
        };
        tel.overload_depth.set(st.depth as u64);
        tel.overload_throttled.set(st.throttled);
        tel.overload_spilled.set(st.spilled);
        tel.overload_folded.set(st.folded_events);
        tel.overload_summaries.set(st.summaries);
    }

    /// Attaches this daemon to a telemetry hub: registers its metric
    /// families (so exposition shows them even at zero) and resolves
    /// every handle once. Must be called before traffic flows; the
    /// untraced default path never takes the attached branch.
    pub fn attach_telemetry(&self, hub: &Arc<Telemetry>) {
        let reg = hub.registry();
        let tel = Arc::new(DaemonTelemetry {
            hub: hub.clone(),
            diag: hub.diag().cloned(),
            last_health: AtomicU8::new(HealthState::Healthy.to_u8()),
            site: Arc::from(self.name.as_str()),
            flight: hub.flight(&self.name),
            forwarded: reg.counter("forwarded", &self.name),
            ingested: reg.counter("ingested", &self.name),
            queue_depth: reg.gauge("queue_depth", &self.name),
            parked_frames: reg.counter("parked_frames", &self.name),
            retries: reg.counter("retries", &self.name),
            retry_backoff_ms: reg.histogram("retry_backoff_ms", &self.name),
            wal_replayed: reg.counter("wal_replayed", &self.name),
            heartbeat_misses: reg.counter("heartbeat_misses", &self.name),
            overload_depth: reg.gauge("overload_depth", &self.name),
            overload_throttled: reg.gauge("overload_throttled", &self.name),
            overload_spilled: reg.gauge("overload_spilled", &self.name),
            overload_folded: reg.gauge("overload_folded", &self.name),
            overload_summaries: reg.gauge("overload_summaries", &self.name),
        });
        *self.tel.write() = Some(tel);
        self.has_tel.store(true, Ordering::Relaxed);
    }

    /// The attached telemetry handles, when telemetry is enabled.
    fn tel(&self) -> Option<Arc<DaemonTelemetry>> {
        if !self.has_tel.load(Ordering::Relaxed) {
            return None;
        }
        self.tel.read().clone()
    }

    /// The live diagnosis hub, when telemetry with a hub is attached.
    fn diag(&self) -> Option<(Arc<DaemonTelemetry>, Arc<DiagHub>)> {
        let tel = self.tel()?;
        let diag = tel.diag.clone()?;
        Some((tel, diag))
    }

    /// Derives the daemon's current health from its liveness window,
    /// overload-ladder rung, and retry-queue depth. The reason string
    /// is only built by [`Ldmsd::note_health`] on an actual
    /// transition.
    fn health_at(&self, now: Epoch) -> HealthState {
        if !self.lifecycle.is_up(now) {
            return HealthState::Down;
        }
        if let Some(ctl) = self.overload_ctl() {
            if ctl.state() != OverloadState::Normal {
                return HealthState::Overloaded;
            }
        }
        if self.queued() > 0 {
            return HealthState::Degraded;
        }
        HealthState::Healthy
    }

    /// Publishes a health transition to the diagnosis hub when the
    /// derived state changed since the last check. Called from the
    /// daemon's virtual-time touch points (hop processing, parking,
    /// pump); a no-op without an attached hub.
    fn note_health(&self, now: Epoch) {
        let Some((tel, diag)) = self.diag() else {
            return;
        };
        let state = self.health_at(now);
        let prev = HealthState::from_u8(tel.last_health.swap(state.to_u8(), Ordering::Relaxed));
        if prev == state {
            return;
        }
        let reason = match state {
            HealthState::Down => "liveness window closed (outage or crash)".to_string(),
            HealthState::Overloaded => {
                let rung = self
                    .overload_ctl()
                    .map(|c| c.state().as_str())
                    .unwrap_or("unknown");
                format!("overload ladder at {rung}")
            }
            HealthState::Degraded => format!("{} frames parked for retry", self.queued()),
            HealthState::Healthy => "recovered".to_string(),
        };
        diag.publish(
            &self.name,
            now,
            HubEventKind::Health {
                from: prev,
                to: state,
                reason,
            },
        );
    }

    /// Publishes a lifecycle fault event to the diagnosis hub; a no-op
    /// without an attached hub.
    fn note_fault(&self, at: Epoch, kind: FaultKind, detail: String) {
        if let Some((_, diag)) = self.diag() {
            diag.publish(&self.name, at, HubEventKind::Fault { kind, detail });
        }
    }

    /// Crash dumps recorded at this daemon's crash-stop instants
    /// (empty unless telemetry was attached and a crash fired).
    pub fn crash_dumps(&self) -> Vec<CrashDump> {
        self.crash_dumps.lock().clone()
    }

    /// The daemon's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The daemon's role.
    pub fn role(&self) -> DaemonRole {
        self.role
    }

    /// The delivery ledger this daemon reports to.
    pub fn ledger(&self) -> &Arc<DeliveryLedger> {
        &self.ledger
    }

    /// Connects this daemon's push target with best-effort semantics
    /// (the paper's behavior: no retry, no queueing).
    pub fn connect_upstream(&self, link: TransportLink, target: Arc<Ldmsd>) {
        self.connect_upstream_with(link, target, QueueConfig::default());
    }

    /// Connects this daemon's push target with an explicit retry-queue
    /// configuration for the hop.
    pub fn connect_upstream_with(
        &self,
        link: TransportLink,
        target: Arc<Ldmsd>,
        config: QueueConfig,
    ) {
        self.connect_upstream_routes(
            vec![(link, target)],
            config,
            HeartbeatConfig::default(),
            None,
        );
    }

    /// Connects a ranked set of upstream routes (index 0 = primary)
    /// sharing one retry queue, a heartbeat/failover policy, and an
    /// optional write-ahead log making the queue crash-durable.
    pub fn connect_upstream_routes(
        &self,
        routes: Vec<(TransportLink, Arc<Ldmsd>)>,
        config: QueueConfig,
        hb: HeartbeatConfig,
        wal: Option<WalConfig>,
    ) {
        let routes: Vec<Route> = routes
            .into_iter()
            .map(|(link, target)| {
                let link_hop = format!("{}/{}", self.name, link.name);
                Route {
                    link,
                    target,
                    link_hop,
                }
            })
            .collect();
        if routes.is_empty() {
            *self.upstream.write() = None;
            return;
        }
        *self.upstream.write() = Some(UpstreamSet {
            routes,
            queue: RetryQueue::new(config),
            queue_hop: format!("{}/queue", self.name),
            wal: wal.map(WriteAheadLog::new),
            hb,
            active: AtomicUsize::new(0),
            failovers: AtomicU64::new(0),
            failbacks: AtomicU64::new(0),
            max_failover_latency_ns: AtomicU64::new(0),
        });
    }

    /// Schedules an outage window `[from, until)` for this daemon.
    /// While down it neither delivers locally nor forwards; senders
    /// with retry queues park messages until the restart. Unlike
    /// [`Ldmsd::schedule_crash`], the retry queue survives.
    pub fn schedule_outage(&self, from: Epoch, until: Epoch) {
        self.lifecycle.schedule_down(from, until);
    }

    /// Schedules a crash-stop at `at` with restart at `restart`: the
    /// daemon goes down like an outage, but *all volatile state is
    /// destroyed* at the crash instant — parked queue entries die
    /// (`lost-crash`) unless a durable WAL record covers them, in
    /// which case the restart replays them. Inverted windows are
    /// ignored.
    pub fn schedule_crash(&self, at: Epoch, restart: Epoch) {
        if restart <= at {
            return;
        }
        self.lifecycle.schedule_down(at, restart);
        self.crashes.lock().push(CrashWindow {
            at,
            restart,
            crashed: false,
            replayed: false,
        });
        self.has_crashes.store(true, Ordering::Relaxed);
    }

    /// True when the daemon is up at `t`.
    pub fn is_up(&self, t: Epoch) -> bool {
        self.lifecycle.is_up(t)
    }

    /// Schedules a flap window on the primary upstream link. Returns
    /// false if this daemon has no upstream.
    pub fn schedule_link_flap(&self, from: Epoch, until: Epoch) -> bool {
        match self.upstream.read().as_ref() {
            Some(up) => {
                up.routes[0].link.schedule_flap(from, until);
                true
            }
            None => false,
        }
    }

    /// Enables seeded probabilistic loss on the primary upstream link.
    /// Returns false if this daemon has no upstream.
    pub fn set_link_loss_prob(&self, prob: f64, seed: u64) -> bool {
        match self.upstream.read().as_ref() {
            Some(up) => {
                up.routes[0].link.set_loss_prob(prob, seed);
                true
            }
            None => false,
        }
    }

    /// Enables deterministic every-`n`-th loss on the primary upstream
    /// link. Returns false if this daemon has no upstream.
    pub fn set_link_drop_every(&self, every: u64) -> bool {
        match self.upstream.read().as_ref() {
            Some(up) => {
                up.routes[0].link.set_drop_every(every);
                true
            }
            None => false,
        }
    }

    /// Subscribes a sink to a stream tag at this daemon.
    pub fn subscribe(&self, tag: &str, sink: Arc<dyn StreamSink>) {
        self.hub.subscribe(tag, sink);
    }

    /// Number of sinks subscribed to `tag` at this daemon (topology
    /// introspection, used by the `iolint` diagnostics passes).
    pub fn subscriber_count(&self, tag: &str) -> usize {
        self.hub.subscriber_count(tag)
    }

    /// The daemon this one forwards to on its *primary* route, if any.
    pub fn upstream_target(&self) -> Option<Arc<Ldmsd>> {
        self.upstream
            .read()
            .as_ref()
            .map(|u| u.routes[0].target.clone())
    }

    /// Every upstream target in rank order (primary first, then
    /// standbys).
    pub fn upstream_targets(&self) -> Vec<Arc<Ldmsd>> {
        self.upstream.read().as_ref().map_or(Vec::new(), |u| {
            u.routes.iter().map(|r| r.target.clone()).collect()
        })
    }

    /// The currently *elected* upstream target (primary unless a
    /// failover switched routes), if any.
    pub fn active_upstream(&self) -> Option<Arc<Ldmsd>> {
        self.upstream
            .read()
            .as_ref()
            .map(|u| u.routes[u.active_idx()].target.clone())
    }

    /// Name of the primary upstream transport link, if any.
    pub fn upstream_link_name(&self) -> Option<String> {
        self.upstream
            .read()
            .as_ref()
            .map(|u| u.routes[0].link.name.clone())
    }

    /// The retry-queue configuration guarding the upstream hop, if any.
    pub fn queue_config(&self) -> Option<QueueConfig> {
        self.upstream
            .read()
            .as_ref()
            .map(|u| u.queue.config().clone())
    }

    /// The capacity of the hop's write-ahead log, if one is attached.
    pub fn wal_capacity(&self) -> Option<usize> {
        self.upstream
            .read()
            .as_ref()
            .and_then(|u| u.wal.as_ref().map(|w| w.config().capacity))
    }

    /// Counter snapshot of the hop's write-ahead log, if one is
    /// attached.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.upstream
            .read()
            .as_ref()
            .and_then(|u| u.wal.as_ref().map(WriteAheadLog::stats))
    }

    /// Route failovers performed (standby elected after missed
    /// heartbeats).
    pub fn failovers(&self) -> u64 {
        self.upstream
            .read()
            .as_ref()
            .map_or(0, |u| u.failovers.load(Ordering::Relaxed))
    }

    /// Route failbacks performed (primary re-elected after the
    /// hysteresis hold).
    pub fn failbacks(&self) -> u64 {
        self.upstream
            .read()
            .as_ref()
            .map_or(0, |u| u.failbacks.load(Ordering::Relaxed))
    }

    /// Longest observed failover delay (route-down to election) in
    /// virtual time.
    pub fn max_failover_latency(&self) -> SimDuration {
        SimDuration::from_nanos(
            self.upstream
                .read()
                .as_ref()
                .map_or(0, |u| u.max_failover_latency_ns.load(Ordering::Relaxed)),
        )
    }

    /// Crash-stop events this daemon has processed.
    pub fn crashes_seen(&self) -> u64 {
        self.crash_count.load(Ordering::Relaxed)
    }

    /// Local stream statistics.
    pub fn stream_stats(&self) -> &StreamStats {
        self.hub.stats()
    }

    /// Messages currently parked in this daemon's retry queue.
    pub fn queued(&self) -> usize {
        self.upstream.read().as_ref().map_or(0, |u| u.queue.len())
    }

    /// Deepest this daemon's retry queue has ever been (entries; a
    /// batch frame counts as one entry).
    pub fn queue_high_water(&self) -> u64 {
        self.upstream
            .read()
            .as_ref()
            .map_or(0, |u| u.queue.high_water())
    }

    /// Earliest virtual instant at which this daemon's retry queue has
    /// something actionable (a retry due or a deadline expiring).
    pub fn queue_next_event(&self) -> Option<Epoch> {
        self.upstream
            .read()
            .as_ref()
            .and_then(|u| u.queue.next_event())
    }

    /// Earliest virtual instant at which *anything* scheduled happens
    /// at this daemon: a queue retry/deadline, an unprocessed crash,
    /// or a restart with WAL records awaiting replay.
    pub fn next_event(&self) -> Option<Epoch> {
        let queue = self.queue_next_event();
        let crash = if self.has_crashes.load(Ordering::Relaxed) {
            self.crashes
                .lock()
                .iter()
                .flat_map(|cw| {
                    let crash = (!cw.crashed).then_some(cw.at);
                    let restart = (!cw.replayed).then_some(cw.restart);
                    crash.into_iter().chain(restart)
                })
                .min()
        } else {
            None
        };
        match (queue, crash) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Receives a message: delivers to local subscribers, then walks
    /// the upstream chain iteratively. Failed hops are parked for
    /// retry or attributed to the ledger, per each hop's queue
    /// configuration.
    pub fn receive(&self, msg: StreamMessage) {
        // Overload admissions can split one arrival into several
        // onward messages (a thinned frame plus flushed summary
        // sketches). The primary continuation walks inline; the extras
        // queue here and each starts a fresh walk — with a fresh
        // visited list, so a summary flushed mid-walk is not mistaken
        // for a forwarding cycle.
        let mut pending: Vec<(Arc<Ldmsd>, StreamMessage)> = Vec::new();
        self.walk(msg, &mut pending);
        while !pending.is_empty() {
            let (daemon, carried) = pending.remove(0);
            daemon.walk(carried, &mut pending);
        }
    }

    /// One full chain walk from this daemon, collecting side-channel
    /// continuations into `pending`.
    fn walk(&self, msg: StreamMessage, pending: &mut Vec<(Arc<Ldmsd>, StreamMessage)>) {
        let mut visited: Vec<*const Ldmsd> = Vec::with_capacity(4);
        let mut hop = self.process_hop(msg, &mut visited, pending);
        while let Some((daemon, carried)) = hop {
            hop = daemon.process_hop(carried, &mut visited, pending);
        }
    }

    /// One hop of the chain walk: local dispatch plus the attempt to
    /// forward. Returns the next daemon and the carried message when
    /// the hop succeeded; `None` when the walk ends here (terminal
    /// daemon, parked for retry, attributed loss, or suppressed
    /// duplicate). Messages the overload controller splits off
    /// (summary flushes) are pushed to `pending` for fresh walks.
    fn process_hop(
        &self,
        msg: StreamMessage,
        visited: &mut Vec<*const Ldmsd>,
        pending: &mut Vec<(Arc<Ldmsd>, StreamMessage)>,
    ) -> Option<(Arc<Ldmsd>, StreamMessage)> {
        let me = self as *const Ldmsd;
        if visited.contains(&me) {
            self.ledger
                .record_loss_n(&self.name, LossCause::CycleDropped, msg.weight());
            return None;
        }
        visited.push(me);
        let now = msg.recv_time;
        self.note_health(now);
        if !self.lifecycle.is_up(now) {
            // The message arrived at a crashed daemon (it was in
            // flight when the crash hit, or was injected directly).
            self.ledger
                .record_loss_n(&self.name, LossCause::DaemonDown, msg.weight());
            return None;
        }
        let terminal = self.upstream.read().is_none();
        // Batch frames travel the pipeline whole and are only opened
        // here, at the end of their path.
        if terminal && msg.is_frame() {
            self.deliver_frame(&msg);
            return None;
        }
        // Idempotent terminal delivery: claim the key *before* the
        // dispatch so a duplicate (a WAL replay of an
        // already-delivered message) never reaches the store sinks.
        // Only keys that will actually be delivered are claimed, so
        // unstored runs keep no key set.
        if terminal && self.hub.subscriber_count(&msg.tag) > 0 {
            if let Some(key) = msg.delivery_key() {
                if !self.ledger.try_claim_delivery(key) {
                    return None;
                }
            }
        }
        let fanout = self.hub.dispatch(&msg);
        let guard = self.upstream.read();
        match guard.as_ref() {
            None => {
                // Terminal daemon: this is where end-to-end delivery
                // is decided. Intermediate dispatches above are taps.
                if fanout > 0 {
                    if msg.is_summary() {
                        // A delivered sketch accounts its folded mass
                        // in the ledger's summarized column — not
                        // delivered, not lost.
                        self.ledger.record_summarized_n(msg.weight());
                    } else {
                        self.ledger.record_delivered();
                        if msg.replayed {
                            self.ledger.record_recovered();
                        }
                    }
                    self.note_ingest(&msg);
                } else {
                    self.ledger
                        .record_loss_n(&self.name, LossCause::NoSubscriber, msg.weight());
                }
                None
            }
            Some(up) => {
                let Some(ctl) = self.overload_ctl() else {
                    return self.try_send(up, msg, 0, None, None, now);
                };
                let rung_before = ctl.state();
                let outcome = ctl.admit(msg, now);
                let rung_after = ctl.state();
                if rung_before != rung_after {
                    if let Some((_, diag)) = self.diag() {
                        diag.publish(
                            &self.name,
                            now,
                            HubEventKind::Overload {
                                from: rung_before.as_str(),
                                to: rung_after.as_str(),
                            },
                        );
                    }
                    self.note_health(now);
                }
                for s in outcome.summaries {
                    let at = s.recv_time.max(now);
                    if let Some(c) = self.try_send(up, s, 0, None, None, at) {
                        pending.push(c);
                    }
                }
                if let Some((spilled, release)) = outcome.spill {
                    self.park(
                        up,
                        QueueEntry {
                            msg: spilled,
                            attempts: 0,
                            next_attempt: release,
                            expire: None,
                            cause: LossCause::Backpressure,
                            lsn: None,
                        },
                        now,
                    );
                }
                match outcome.forward {
                    Some(m) => {
                        // A paced message leaves at its service slot,
                        // not its arrival instant.
                        let at = m.recv_time.max(now);
                        self.try_send(up, m, 0, None, None, at)
                    }
                    None => None,
                }
            }
        }
    }

    /// Flushes the hop's open summary sketches (if an overload
    /// controller is attached) and forwards them upstream. Returns how
    /// many sketches were flushed. Called when settling a campaign so
    /// folded mass re-enters the pipeline before final accounting.
    pub fn flush_overload(&self, now: Epoch) -> usize {
        let Some(ctl) = self.overload_ctl() else {
            return 0;
        };
        let summaries = ctl.flush_all(now);
        if summaries.is_empty() {
            return 0;
        }
        let n = summaries.len();
        let continuations: Vec<(Arc<Ldmsd>, StreamMessage)> = {
            let guard = self.upstream.read();
            match guard.as_ref() {
                Some(up) => summaries
                    .into_iter()
                    .filter_map(|s| self.try_send(up, s, 0, None, None, now))
                    .collect(),
                // A terminal daemon never folds (admission happens on
                // the forward path), but account defensively.
                None => {
                    for s in summaries {
                        self.ledger
                            .record_loss_n(&self.name, LossCause::NoSubscriber, s.weight());
                    }
                    Vec::new()
                }
            }
        };
        for (target, carried) in continuations {
            target.receive(carried);
        }
        n
    }

    /// Terminal delivery of a batch frame: decode it and deliver every
    /// member as if it had arrived unbatched — each member claims its
    /// own `(producer, job, rank, seq)` idempotency key before the
    /// store sees it, so dedup, gap detection, and ingest observe
    /// exactly the logical messages the sampler coalesced.
    fn deliver_frame(&self, frame: &StreamMessage) {
        let members = match crate::batch::decode_frame(&frame.data) {
            Ok(records) => crate::batch::unbatch(frame, records),
            Err(_) => {
                // An undecodable frame cannot be split; deliver it
                // whole so its full weight stays accounted (the store
                // will reject the payload).
                if self.hub.dispatch(frame) > 0 {
                    self.ledger.record_delivered_n(frame.weight());
                } else {
                    self.ledger
                        .record_loss_n(&self.name, LossCause::NoSubscriber, frame.weight());
                }
                return;
            }
        };
        for member in members {
            if self.hub.subscriber_count(&member.tag) > 0 {
                if let Some(key) = member.delivery_key() {
                    if !self.ledger.try_claim_delivery(key) {
                        // Suppressed duplicate: already counted when
                        // first delivered, nothing moves.
                        continue;
                    }
                }
            }
            if self.hub.dispatch(&member) > 0 {
                self.ledger.record_delivered();
                if member.replayed {
                    self.ledger.record_recovered();
                }
                self.note_ingest(&member);
            } else {
                self.ledger.record_loss(&self.name, LossCause::NoSubscriber);
            }
        }
    }

    /// Telemetry for one terminal delivery: bumps the ingest counter
    /// and, for a traced message, closes the trace with an `ingest`
    /// span whose latency is the full publish-to-store sojourn.
    fn note_ingest(&self, msg: &StreamMessage) {
        let Some(tel) = self.tel() else { return };
        tel.ingested.add(msg.weight());
        if let Some(trace) = msg.trace {
            tel.hub.span(
                trace,
                HopKind::Ingest,
                &tel.site,
                msg.recv_time,
                msg.recv_time.since(msg.publish_time),
            );
        }
    }

    /// Attempts one send over the elected upstream route.
    /// `prior_attempts` is how many attempts the message has already
    /// consumed (0 for a fresh message); `expire` carries a
    /// block-with-deadline sojourn deadline across re-parks; `lsn` is
    /// the WAL record already backing the message, if any.
    fn try_send(
        &self,
        up: &UpstreamSet,
        msg: StreamMessage,
        prior_attempts: u32,
        expire: Option<Epoch>,
        lsn: Option<u64>,
        now: Epoch,
    ) -> Option<(Arc<Ldmsd>, StreamMessage)> {
        let attempts = prior_attempts + 1;
        let weight = msg.weight();
        let cfg = up.queue.config();
        let retryable = cfg.retries_enabled() && attempts < cfg.max_attempts;
        let route = match self.diag() {
            None => &up.routes[up.elect(now)],
            Some((_, diag)) => {
                // Route elections mutate the failover/failback counters;
                // a change across this election is a fault event worth
                // publishing live.
                let fo = up.failovers.load(Ordering::Relaxed);
                let fb = up.failbacks.load(Ordering::Relaxed);
                let idx = up.elect(now);
                if up.failovers.load(Ordering::Relaxed) > fo {
                    diag.publish(
                        &self.name,
                        now,
                        HubEventKind::Fault {
                            kind: FaultKind::Failover,
                            detail: format!(
                                "elected standby route {}",
                                up.routes[idx].target.name()
                            ),
                        },
                    );
                }
                if up.failbacks.load(Ordering::Relaxed) > fb {
                    diag.publish(
                        &self.name,
                        now,
                        HubEventKind::Fault {
                            kind: FaultKind::Failback,
                            detail: format!(
                                "failed back to route {}",
                                up.routes[idx].target.name()
                            ),
                        },
                    );
                }
                &up.routes[idx]
            }
        };

        // Detectable failures: the sender can see a flapped link or a
        // crashed peer (the connection refuses), so the message is not
        // offered to the link at all.
        let detected = if route.link.is_down(now) {
            Some((LossCause::LinkLoss, route.link.next_up(now)))
        } else if !route.target.lifecycle.is_up(now) {
            Some((LossCause::DaemonDown, route.target.lifecycle.next_up(now)))
        } else {
            None
        };
        if let Some((cause, component_up)) = detected {
            if let Some(tel) = self.tel() {
                // A send finding the active route unresponsive is what
                // heartbeat monitoring observes as a miss.
                tel.heartbeat_misses.inc();
                tel.flight.note(
                    now,
                    format!(
                        "send blocked: {} route={} retryable={retryable}",
                        cause.as_str(),
                        route.target.name()
                    ),
                );
            }
            if retryable {
                // Retry no earlier than the component's scheduled
                // recovery — or the heartbeat-detection instant that
                // would elect a standby route, whichever comes first.
                let recover_at = up.recovery_instant(route, component_up, now);
                let next_attempt = up.queue.backoff_after(attempts, now).max(recover_at);
                self.park(
                    up,
                    QueueEntry {
                        msg,
                        attempts,
                        next_attempt,
                        expire,
                        cause,
                        lsn,
                    },
                    now,
                );
            } else {
                self.complete_wal_durable(up, lsn);
                match cause {
                    LossCause::DaemonDown => {
                        self.ledger
                            .record_loss_n(route.target.name(), cause, weight);
                    }
                    _ => self.ledger.record_loss_n(&route.link_hop, cause, weight),
                }
            }
            return None;
        }

        // Silent loss: the link accepts the message and may drop it in
        // transit. Clone first only when a retry could use the copy.
        let backup = if retryable { Some(msg.clone()) } else { None };
        match route.link.carry(msg) {
            Some(carried) => {
                // The hop succeeded: mark the WAL record completed (a
                // volatile mark — only a checkpoint makes it durable,
                // which is exactly what makes duplicate replay
                // possible and the idempotent path necessary).
                if let (Some(l), Some(w)) = (lsn, up.wal.as_ref()) {
                    w.complete(l);
                }
                if let Some(tel) = self.tel() {
                    tel.forwarded.add(weight);
                    if let Some(trace) = carried.trace {
                        tel.hub.span(
                            trace,
                            HopKind::Forward,
                            &tel.site,
                            carried.recv_time,
                            carried.recv_time.since(now),
                        );
                    }
                }
                Some((route.target.clone(), carried))
            }
            None => {
                match backup {
                    Some(m) => {
                        let next_attempt = up.queue.backoff_after(attempts, now);
                        self.park(
                            up,
                            QueueEntry {
                                msg: m,
                                attempts,
                                next_attempt,
                                expire,
                                cause: LossCause::LinkLoss,
                                lsn,
                            },
                            now,
                        );
                    }
                    None => {
                        self.complete_wal_durable(up, lsn);
                        self.ledger
                            .record_loss_n(&route.link_hop, LossCause::LinkLoss, weight);
                    }
                }
                None
            }
        }
    }

    /// Parks an entry in the hop's queue, journaling it in the WAL
    /// first (when configured) and attributing any messages the
    /// overflow policy evicted to admit it.
    fn park(&self, up: &UpstreamSet, mut entry: QueueEntry, now: Epoch) {
        if entry.lsn.is_none() {
            if let Some(w) = &up.wal {
                entry.lsn = w.append(&entry.msg, entry.attempts);
            }
        }
        if let Some(tel) = self.tel() {
            let backoff = entry.next_attempt.since(now);
            tel.parked_frames.inc();
            tel.retry_backoff_ms.record(backoff.as_nanos() / 1_000_000);
            tel.flight.note(
                now,
                format!(
                    "park: cause={} attempts={} wal={} retry_in={:.3}s",
                    entry.cause.as_str(),
                    entry.attempts,
                    entry.lsn.is_some(),
                    backoff.as_secs_f64()
                ),
            );
            if let Some(trace) = entry.msg.trace {
                tel.hub.span(trace, HopKind::Park, &tel.site, now, backoff);
            }
        }
        for evicted in up.queue.push(entry, now) {
            self.attribute(up, evicted);
        }
        if let Some(tel) = self.tel() {
            tel.queue_depth.set(up.queue.len() as u64);
        }
        self.note_health(now);
    }

    /// Records an abandoned queue entry as lost, attributed to the hop
    /// responsible for its final failure cause. The entry's WAL record
    /// (if any) is completed durably at the same instant, so an
    /// attributed-lost message can never be replayed and recounted.
    fn attribute(&self, up: &UpstreamSet, entry: QueueEntry) {
        self.complete_wal_durable(up, entry.lsn);
        if let Some(tel) = self.tel() {
            tel.flight.note(
                entry.msg.recv_time,
                format!(
                    "abandon: cause={} attempts={} weight={}",
                    entry.cause.as_str(),
                    entry.attempts,
                    entry.msg.weight()
                ),
            );
        }
        let weight = entry.msg.weight();
        let route = &up.routes[up.active_idx()];
        match entry.cause {
            LossCause::LinkLoss => self
                .ledger
                .record_loss_n(&route.link_hop, entry.cause, weight),
            LossCause::DaemonDown => {
                self.ledger
                    .record_loss_n(route.target.name(), entry.cause, weight)
            }
            LossCause::Crash => self.ledger.record_loss_n(&self.name, entry.cause, weight),
            _ => self
                .ledger
                .record_loss_n(&up.queue_hop, entry.cause, weight),
        }
    }

    fn complete_wal_durable(&self, up: &UpstreamSet, lsn: Option<u64>) {
        if let (Some(l), Some(w)) = (lsn, up.wal.as_ref()) {
            w.complete_durable(l);
        }
    }

    /// Drains this daemon's retry queue as of virtual instant `now`:
    /// processes any scheduled crash/restart events first, then
    /// expires over-deadline entries and re-attempts every entry whose
    /// retry time has come. Successful re-sends continue walking the
    /// chain from the target.
    pub fn pump(&self, now: Epoch) {
        if self.has_crashes.load(Ordering::Relaxed) {
            self.process_crashes(now);
        }
        self.note_health(now);
        let continuations = {
            let guard = self.upstream.read();
            let Some(up) = guard.as_ref() else { return };
            if up.queue.is_empty() {
                return;
            }
            for expired in up.queue.take_expired(now) {
                self.attribute(up, expired);
            }
            let tel = self.tel();
            let mut conts = Vec::new();
            while let Some(mut entry) = up.queue.pop_due(now) {
                if let Some(tel) = &tel {
                    tel.retries.inc();
                    if let Some(trace) = entry.msg.trace {
                        // Latency of the retry hop: how long the entry
                        // sat parked before this drain re-sent it.
                        tel.hub.span(
                            trace,
                            HopKind::Retry,
                            &tel.site,
                            now,
                            now.since(entry.msg.recv_time),
                        );
                    }
                }
                // A buffered message cannot arrive before the retry
                // that re-sent it: bump its clock to the drain time.
                entry.msg.recv_time = entry.msg.recv_time.max(now);
                if let Some(c) =
                    self.try_send(up, entry.msg, entry.attempts, entry.expire, entry.lsn, now)
                {
                    conts.push(c);
                }
            }
            if let Some(tel) = &tel {
                tel.queue_depth.set(up.queue.len() as u64);
            }
            conts
        };
        for (target, carried) in continuations {
            target.receive(carried);
        }
    }

    /// Processes scheduled crash windows that have come due: at the
    /// crash instant all volatile state dies; at the restart instant
    /// durable WAL records are replayed into the queue.
    fn process_crashes(&self, now: Epoch) {
        let mut crashes = self.crashes.lock();
        for cw in crashes.iter_mut() {
            if !cw.crashed && cw.at <= now {
                cw.crashed = true;
                self.crash_count.fetch_add(1, Ordering::Relaxed);
                self.crash_drop_volatile(cw.at);
                self.note_fault(
                    cw.at,
                    FaultKind::Crash,
                    format!(
                        "crash-stop at {:.3}s (restart {:.3}s)",
                        cw.at.as_secs_f64(),
                        cw.restart.as_secs_f64()
                    ),
                );
                self.note_health(cw.at);
            }
            if cw.crashed && !cw.replayed && cw.restart <= now {
                cw.replayed = true;
                self.replay_wal(cw.restart);
                self.note_fault(
                    cw.restart,
                    FaultKind::Restart,
                    format!("restarted; {} entries parked for retry", self.queued()),
                );
                self.note_health(cw.restart);
            }
        }
        if crashes.iter().all(|cw| cw.replayed) {
            self.has_crashes.store(false, Ordering::Relaxed);
        }
    }

    /// Crash-stop: destroys the volatile retry queue. Entries without
    /// a surviving (durable) WAL record are attributed `lost-crash`;
    /// covered entries live on in the log until the restart replays
    /// them.
    fn crash_drop_volatile(&self, at: Epoch) {
        let guard = self.upstream.read();
        let tel = self.tel();
        let Some(up) = guard.as_ref() else {
            // A terminal daemon has no queue to lose, but its flight
            // recorder still explains what it saw before dying.
            if let Some(tel) = tel {
                self.snapshot_crash_dump(&tel, at, 0, 0);
            }
            return;
        };
        let entries = up.queue.drain_all();
        let surviving = up.wal.as_ref().map(|w| w.crash());
        let dropped = entries.len() as u64;
        let mut wal_covered = 0u64;
        for e in entries {
            let covered = matches!(
                (&surviving, e.lsn),
                (Some(set), Some(lsn)) if set.contains(&lsn)
            );
            if covered {
                wal_covered += 1;
            } else {
                self.ledger
                    .record_loss_n(&self.name, LossCause::Crash, e.msg.weight());
            }
        }
        if let Some(tel) = tel {
            tel.queue_depth.set(0);
            self.snapshot_crash_dump(&tel, at, dropped, wal_covered);
        }
    }

    /// Freezes the flight recorder into a [`CrashDump`] at the crash
    /// instant, after noting the crash itself so the dump's last line
    /// is the death.
    fn snapshot_crash_dump(&self, tel: &DaemonTelemetry, at: Epoch, dropped: u64, covered: u64) {
        tel.flight.note(
            at,
            format!("crash-stop: {dropped} volatile queue entries ({covered} WAL-covered)"),
        );
        self.crash_dumps.lock().push(CrashDump {
            daemon: self.name.clone(),
            at_s: at.as_secs_f64(),
            dropped_volatile: dropped,
            wal_covered: covered,
            events: tel
                .flight
                .snapshot()
                .iter()
                .map(FlightEvent::render)
                .collect(),
        });
    }

    /// Restart recovery: re-parks every durable, uncompleted WAL
    /// record. Replayed messages are flagged so the terminal can count
    /// genuine recoveries, and keep their LSN so a later loss (or a
    /// second crash) stays exactly accounted.
    fn replay_wal(&self, restart: Epoch) {
        let guard = self.upstream.read();
        let Some(up) = guard.as_ref() else { return };
        let Some(w) = &up.wal else { return };
        let tel = self.tel();
        for rec in w.replay() {
            let mut msg = rec.msg;
            if let Some(tel) = &tel {
                tel.wal_replayed.inc();
                tel.flight.note(
                    restart,
                    format!("wal-replay: lsn={} attempts={}", rec.lsn, rec.attempts),
                );
                if let Some(trace) = msg.trace {
                    // The replayed message keeps its original trace
                    // id and gains a replay span covering the gap
                    // between its last sighting and the restart.
                    tel.hub.span(
                        trace,
                        HopKind::Replay,
                        &tel.site,
                        restart,
                        restart.since(msg.recv_time),
                    );
                }
            }
            msg.replayed = true;
            msg.recv_time = msg.recv_time.max(restart);
            let attempts = rec.attempts;
            let next_attempt = up.queue.backoff_after(attempts.max(1), restart);
            let entry = QueueEntry {
                msg,
                attempts,
                next_attempt,
                expire: None,
                cause: LossCause::Crash,
                lsn: Some(rec.lsn),
            };
            for evicted in up.queue.push(entry, restart) {
                self.attribute(up, evicted);
            }
        }
        if let Some(tel) = &tel {
            tel.queue_depth.set(up.queue.len() as u64);
        }
    }

    /// Abandons everything still parked, attributing each entry to the
    /// hop of its last failure. Returns how many were abandoned. Used
    /// when settling a campaign past its horizon.
    pub fn abandon_queue(&self) -> usize {
        let guard = self.upstream.read();
        let Some(up) = guard.as_ref() else { return 0 };
        let entries = up.queue.drain_all();
        let n = entries.len();
        for e in entries {
            self.attribute(up, e);
        }
        n
    }
}

impl std::fmt::Debug for Ldmsd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ldmsd")
            .field("name", &self.name)
            .field("role", &self.role)
            .finish()
    }
}

/// Build options for an [`LdmsNetwork`] beyond the queue preset. The
/// default reproduces the paper's topology and semantics exactly.
#[derive(Debug, Clone, Default)]
pub struct NetworkOpts {
    /// Retry-queue configuration applied to every hop.
    pub queue: QueueConfig,
    /// Deploy a standby L1 aggregator (`"voltrino-standby"`) and give
    /// every sampler a ranked two-route upstream list.
    pub standby_l1: bool,
    /// Heartbeat/failover policy for every hop (only meaningful with
    /// more than one route, i.e. `standby_l1`).
    pub heartbeat: HeartbeatConfig,
    /// Attach a write-ahead log with this configuration to every
    /// forwarding hop, making retry queues crash-durable.
    pub wal: Option<WalConfig>,
    /// Attach every daemon to this telemetry hub (metric registry,
    /// span log, flight recorders). `None` (the default) keeps the
    /// pipeline byte-identical to the uninstrumented build.
    pub telemetry: Option<Arc<Telemetry>>,
    /// Attach an overload controller with this policy to every
    /// forwarding hop (samplers and aggregators with an upstream).
    /// `None` (the default) keeps every admission a pass-through.
    pub overload: Option<OverloadConfig>,
}

/// Aggregated crash-recovery counters for one network (and its
/// ledger): what the chaos CLI prints and the acceptance tests assert.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Crash-stop events processed across all daemons.
    pub crashes: u64,
    /// WAL records appended across all hops.
    pub wal_appended: u64,
    /// WAL records replayed at restarts.
    pub wal_replayed: u64,
    /// Unsynced WAL records destroyed by crashes.
    pub wal_dropped_unsynced: u64,
    /// WAL appends rejected at capacity (entries left volatile-only).
    pub wal_rejected: u64,
    /// Messages attributed `lost-crash` (volatile queue state killed
    /// with no durable record).
    pub lost_crash: u64,
    /// Messages delivered via WAL replay after a crash.
    pub recovered: u64,
    /// Duplicate deliveries suppressed by the idempotent terminal.
    pub duplicates_suppressed: u64,
    /// Route failovers (standby elected after missed heartbeats).
    pub failovers: u64,
    /// Route failbacks (primary re-elected after the hysteresis hold).
    pub failbacks: u64,
    /// Longest observed failover delay in virtual seconds.
    pub max_failover_latency_s: f64,
    /// Flight-recorder dumps captured at crash-stop instants, in
    /// topology order (empty unless telemetry was attached).
    pub crash_dumps: Vec<CrashDump>,
}

impl RecoveryReport {
    /// One-line summary for experiment logs and the chaos CLI.
    pub fn summary(&self) -> String {
        format!(
            "crashes={} wal-appended={} wal-replayed={} recovered={} \
             duplicates-suppressed={} lost-crash={} failovers={} failbacks={} \
             max-failover-latency={:.3}s",
            self.crashes,
            self.wal_appended,
            self.wal_replayed,
            self.recovered,
            self.duplicates_suppressed,
            self.lost_crash,
            self.failovers,
            self.failbacks,
            self.max_failover_latency_s,
        )
    }
}

/// The assembled two-level aggregation network of the paper:
/// compute-node daemons → head-node L1 aggregator → remote L2
/// aggregator, optionally with a standby L1. All daemons share one
/// [`DeliveryLedger`].
pub struct LdmsNetwork {
    nodes: HashMap<String, Arc<Ldmsd>>,
    /// Deterministic pump/settle order: sorted samplers, then L1, the
    /// standby (if any), and L2.
    ordered: Vec<Arc<Ldmsd>>,
    l1: Arc<Ldmsd>,
    standby: Option<Arc<Ldmsd>>,
    l2: Arc<Ldmsd>,
    ledger: Arc<DeliveryLedger>,
    telemetry: Option<Arc<Telemetry>>,
}

impl LdmsNetwork {
    /// Builds the network for the given compute-node names with the
    /// paper's best-effort hop semantics.
    pub fn build(node_names: &[String]) -> Self {
        Self::build_with(node_names, QueueConfig::default())
    }

    /// Builds the network with an explicit retry-queue configuration
    /// applied to every hop.
    pub fn build_with(node_names: &[String], queue: QueueConfig) -> Self {
        Self::build_full(
            node_names,
            &NetworkOpts {
                queue,
                ..NetworkOpts::default()
            },
        )
    }

    /// Builds the network with full recovery options: queue preset,
    /// optional standby L1 aggregator, heartbeat policy, and optional
    /// per-hop write-ahead logs. Each hop's jitter RNG is decorrelated
    /// by deriving its seed from the configured seed and the hop
    /// index.
    pub fn build_full(node_names: &[String], opts: &NetworkOpts) -> Self {
        let queue = &opts.queue;
        let ledger = Arc::new(DeliveryLedger::new());
        let l2 = Ldmsd::with_ledger("shirley-agg", DaemonRole::AggregatorL2, ledger.clone());
        let l1 = Ldmsd::with_ledger("voltrino-head", DaemonRole::AggregatorL1, ledger.clone());
        l1.connect_upstream_routes(
            vec![(TransportLink::site_network(), l2.clone())],
            queue
                .clone()
                .with_seed(queue.seed ^ crate::fault::mix64(u64::MAX)),
            opts.heartbeat,
            opts.wal.clone(),
        );
        let standby = opts.standby_l1.then(|| {
            let d =
                Ldmsd::with_ledger("voltrino-standby", DaemonRole::AggregatorL1, ledger.clone());
            d.connect_upstream_routes(
                vec![(TransportLink::site_network(), l2.clone())],
                queue
                    .clone()
                    .with_seed(queue.seed ^ crate::fault::mix64(u64::MAX - 1)),
                opts.heartbeat,
                opts.wal.clone(),
            );
            d
        });
        let mut sorted: Vec<String> = node_names.to_vec();
        sorted.sort();
        let mut nodes = HashMap::with_capacity(sorted.len());
        let mut ordered = Vec::with_capacity(sorted.len() + 3);
        for (i, n) in sorted.iter().enumerate() {
            let d = Ldmsd::with_ledger(n, DaemonRole::Sampler, ledger.clone());
            let mut routes = vec![(TransportLink::ugni(), l1.clone())];
            if let Some(s) = &standby {
                routes.push((TransportLink::ugni(), s.clone()));
            }
            d.connect_upstream_routes(
                routes,
                queue
                    .clone()
                    .with_seed(queue.seed ^ crate::fault::mix64(i as u64)),
                opts.heartbeat,
                opts.wal.clone(),
            );
            nodes.insert(n.clone(), d.clone());
            ordered.push(d);
        }
        ordered.push(l1.clone());
        if let Some(s) = &standby {
            ordered.push(s.clone());
        }
        ordered.push(l2.clone());
        if let Some(tel) = &opts.telemetry {
            for d in &ordered {
                d.attach_telemetry(tel);
            }
        }
        if let Some(oc) = &opts.overload {
            // The same seed at every hop keeps the 1-in-N keep
            // decision consistent end-to-end (an event kept at the
            // sampler is kept at the aggregators too); the ordinal
            // keeps each hop's sketch sequence numbers disjoint.
            for (i, d) in ordered.iter().enumerate() {
                if d.upstream.read().is_some() {
                    d.attach_overload(oc.clone(), i as u64);
                }
            }
        }
        Self {
            nodes,
            ordered,
            l1,
            standby,
            l2,
            ledger,
            telemetry: opts.telemetry.clone(),
        }
    }

    /// The telemetry hub every daemon reports into, when attached.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// The first-level (head node) aggregator.
    pub fn l1(&self) -> &Arc<Ldmsd> {
        &self.l1
    }

    /// The standby L1 aggregator, when one was deployed.
    pub fn standby(&self) -> Option<&Arc<Ldmsd>> {
        self.standby.as_ref()
    }

    /// The second-level (remote cluster) aggregator — where store
    /// plugins subscribe.
    pub fn l2(&self) -> &Arc<Ldmsd> {
        &self.l2
    }

    /// The daemon on a compute node, if present.
    pub fn node(&self, name: &str) -> Option<&Arc<Ldmsd>> {
        self.nodes.get(name)
    }

    /// Number of compute-node daemons.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Every daemon in deterministic order: sorted samplers, then the
    /// L1, standby (if any), and L2 aggregators (topology
    /// introspection for `iolint`).
    pub fn daemons(&self) -> &[Arc<Ldmsd>] {
        &self.ordered
    }

    /// The network-wide delivery ledger.
    pub fn ledger(&self) -> &Arc<DeliveryLedger> {
        &self.ledger
    }

    /// Per-hop retry-queue pressure, in topology order:
    /// `(daemon, currently parked, deepest ever)`. Entries count
    /// buffer slots — a batch frame occupies one.
    pub fn queue_depths(&self) -> Vec<(String, usize, u64)> {
        self.ordered
            .iter()
            .map(|d| (d.name().to_string(), d.queued(), d.queue_high_water()))
            .collect()
    }

    /// Resolves a fault-script component name: a compute-node name, an
    /// aggregator host name, or the aliases `"l1"` / `"l2"` /
    /// `"standby"`.
    fn resolve(&self, name: &str) -> Option<&Arc<Ldmsd>> {
        match name {
            "l1" => Some(&self.l1),
            "l2" => Some(&self.l2),
            "standby" => self.standby.as_ref(),
            n if n == self.l1.name() => Some(&self.l1),
            n if n == self.l2.name() => Some(&self.l2),
            n if Some(n) == self.standby.as_ref().map(|s| s.name()) => self.standby.as_ref(),
            n => self.nodes.get(n),
        }
    }

    /// Applies a chaos script to the network. Returns how many faults
    /// were applied; specs naming unknown components are skipped (and
    /// not counted), so a script can be shared across topologies.
    pub fn apply_faults(&self, script: &FaultScript) -> usize {
        let mut applied = 0;
        for spec in script.specs() {
            let ok = match spec {
                FaultSpec::DaemonOutage {
                    daemon,
                    from,
                    until,
                } => self
                    .resolve(daemon)
                    .map(|d| d.schedule_outage(*from, *until))
                    .is_some(),
                FaultSpec::LinkFlap {
                    daemon,
                    from,
                    until,
                } => self
                    .resolve(daemon)
                    .is_some_and(|d| d.schedule_link_flap(*from, *until)),
                FaultSpec::LinkLossProb { daemon, prob, seed } => self
                    .resolve(daemon)
                    .is_some_and(|d| d.set_link_loss_prob(*prob, *seed)),
                FaultSpec::LinkDropEvery { daemon, every } => self
                    .resolve(daemon)
                    .is_some_and(|d| d.set_link_drop_every(*every)),
                FaultSpec::Crash {
                    daemon,
                    at,
                    restart,
                } => self
                    .resolve(daemon)
                    .map(|d| d.schedule_crash(*at, *restart))
                    .is_some(),
                // Storage-tier faults target the DSOS cluster behind
                // the terminal store, not the transport network; the
                // pipeline layer routes them there.
                FaultSpec::CrashDsosd { .. } | FaultSpec::RestartDsosd { .. } => false,
            };
            if ok {
                applied += 1;
            }
        }
        applied
    }

    /// Publishes a message from a compute node into the pipeline. An
    /// unknown producer publishes directly at L1 (matching LDMS's
    /// tolerance for external stream sources). Retries that have come
    /// due by the message's publish instant are drained first, so
    /// buffered traffic re-flows in virtual-time order.
    pub fn publish(&self, msg: StreamMessage) {
        self.ledger.record_published_n(msg.weight());
        if let Some(tel) = &self.telemetry {
            if let Some(trace) = msg.trace {
                // The trace's opening span: zero-latency marker at the
                // producer, stamped with the publish instant.
                tel.span(
                    trace,
                    HopKind::Publish,
                    &msg.producer,
                    msg.publish_time,
                    SimDuration::ZERO,
                );
            }
        }
        self.pump(msg.recv_time);
        match self.nodes.get(msg.producer.as_ref()) {
            Some(d) => d.receive(msg),
            None => self.l1.receive(msg),
        }
    }

    /// Drains every daemon's retry queue as of virtual instant `now`.
    pub fn pump(&self, now: Epoch) {
        if let Some(tel) = &self.telemetry {
            // Drive the diagnosis hub's metric-snapshot cadence from
            // the network's virtual-time progression (no-op without a
            // hub).
            tel.advance_diag(now);
        }
        for d in &self.ordered {
            d.pump(now);
        }
    }

    /// Runs the network to quiescence: repeatedly advances virtual
    /// time to the next scheduled event (queued retry, deadline,
    /// crash, or restart replay) up to `horizon`, then abandons (and
    /// attributes) anything still parked. After this returns, the
    /// ledger balances: `published == delivered + total_lost`.
    pub fn settle(&self, horizon: Epoch) -> usize {
        loop {
            loop {
                let next = self.ordered.iter().filter_map(|d| d.next_event()).min();
                match next {
                    Some(t) if t <= horizon => self.pump(t),
                    _ => break,
                }
            }
            // Close out any open summary sketches: their folded mass
            // re-enters the pipeline (and may park or fold again at a
            // later hop), so drain to quiescence again until no hop
            // holds an open sketch.
            let flushed: usize = self.ordered.iter().map(|d| d.flush_overload(horizon)).sum();
            if flushed == 0 {
                break;
            }
        }
        self.ordered.iter().map(|d| d.abandon_queue()).sum()
    }

    /// Per-hop overload-controller snapshots, in topology order
    /// (absent hops — no controller attached — are skipped).
    pub fn overload_stats(&self) -> Vec<(String, OverloadStats)> {
        self.ordered
            .iter()
            .filter_map(|d| d.overload_stats().map(|s| (d.name().to_string(), s)))
            .collect()
    }

    /// Mirrors every hop's overload counters into the telemetry
    /// registry (no-op without telemetry or controllers).
    pub fn sync_overload_telemetry(&self) {
        for d in &self.ordered {
            d.sync_overload_telemetry();
        }
    }

    /// Aggregated crash-recovery counters across every daemon and the
    /// shared ledger.
    pub fn recovery_report(&self) -> RecoveryReport {
        let mut r = RecoveryReport {
            lost_crash: self.ledger.lost_with_cause(LossCause::Crash),
            recovered: self.ledger.recovered(),
            duplicates_suppressed: self.ledger.duplicates(),
            ..RecoveryReport::default()
        };
        let mut max_latency = SimDuration::ZERO;
        for d in &self.ordered {
            r.crashes += d.crashes_seen();
            r.failovers += d.failovers();
            r.failbacks += d.failbacks();
            r.crash_dumps.extend(d.crash_dumps());
            max_latency = max_latency.max(d.max_failover_latency());
            if let Some(w) = d.wal_stats() {
                r.wal_appended += w.appended;
                r.wal_replayed += w.replayed;
                r.wal_dropped_unsynced += w.dropped_unsynced;
                r.wal_rejected += w.rejected_full;
            }
        }
        r.max_failover_latency_s = max_latency.as_secs_f64();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{BufferSink, MsgClass, MsgFormat};
    use iosim_time::Epoch;

    fn msg(producer: &str, data: &str) -> StreamMessage {
        StreamMessage::new(
            "darshanConnector",
            MsgFormat::Json,
            data.to_string(),
            producer,
            Epoch::from_secs(100),
        )
    }

    fn msg_at(producer: &str, at: Epoch) -> StreamMessage {
        StreamMessage::new(
            "darshanConnector",
            MsgFormat::Json,
            "{}".into(),
            producer,
            at,
        )
    }

    fn network() -> LdmsNetwork {
        LdmsNetwork::build(&["nid00040".into(), "nid00041".into()])
    }

    #[test]
    fn message_traverses_two_hops_to_l2() {
        let net = network();
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        net.publish(msg("nid00040", "{\"op\":\"write\"}"));
        let got = sink.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].hops, 2);
        assert!(got[0].recv_time > got[0].publish_time);
        assert!(net.ledger().balances());
        assert_eq!(net.ledger().delivered(), 1);
    }

    #[test]
    fn subscriber_at_l1_sees_messages_before_l2_delay() {
        let net = network();
        let at_l1 = BufferSink::new();
        let at_l2 = BufferSink::new();
        net.l1().subscribe("darshanConnector", at_l1.clone());
        net.l2().subscribe("darshanConnector", at_l2.clone());
        net.publish(msg("nid00041", "{}"));
        let m1 = &at_l1.snapshot()[0];
        let m2 = &at_l2.snapshot()[0];
        assert!(m1.recv_time < m2.recv_time);
        assert_eq!(m1.hops, 1);
    }

    #[test]
    fn unknown_producer_enters_at_l1() {
        let net = network();
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        net.publish(msg("external-host", "{}"));
        let got = sink.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].hops, 1); // only the L1→L2 hop
    }

    #[test]
    fn node_daemon_counts_published_messages() {
        let net = network();
        net.publish(msg("nid00040", "{}"));
        net.publish(msg("nid00040", "{}"));
        assert_eq!(net.node("nid00040").unwrap().stream_stats().published(), 2);
        assert_eq!(net.node("nid00041").unwrap().stream_stats().published(), 0);
        // L1 saw both; L2 saw both.
        assert_eq!(net.l1().stream_stats().published(), 2);
        assert_eq!(net.l2().stream_stats().published(), 2);
    }

    #[test]
    fn concurrent_publishers_all_arrive() {
        let net = Arc::new(LdmsNetwork::build(
            &(0..8).map(|i| format!("nid{i:05}")).collect::<Vec<_>>(),
        ));
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        std::thread::scope(|s| {
            for i in 0..8 {
                let net = net.clone();
                s.spawn(move || {
                    for j in 0..50 {
                        net.publish(msg(&format!("nid{i:05}"), &format!("{{\"n\":{j}}}")));
                    }
                });
            }
        });
        assert_eq!(sink.len(), 400);
        assert_eq!(net.ledger().published(), 400);
        assert_eq!(net.ledger().delivered(), 400);
        assert!(net.ledger().balances());
    }

    #[test]
    fn topology_cycle_is_dropped_not_looped() {
        let ledger = Arc::new(DeliveryLedger::new());
        let a = Ldmsd::with_ledger("a", DaemonRole::AggregatorL1, ledger.clone());
        let b = Ldmsd::with_ledger("b", DaemonRole::AggregatorL1, ledger.clone());
        a.connect_upstream(TransportLink::ugni(), b.clone());
        b.connect_upstream(TransportLink::ugni(), a.clone());
        ledger.record_published();
        a.receive(msg("a", "{}")); // returns instead of recursing forever
        assert_eq!(ledger.lost_with_cause(LossCause::CycleDropped), 1);
        assert!(ledger.balances());
    }

    #[test]
    fn deep_chain_forwards_iteratively() {
        let ledger = Arc::new(DeliveryLedger::new());
        let daemons: Vec<Arc<Ldmsd>> = (0..2000)
            .map(|i| Ldmsd::with_ledger(&format!("d{i}"), DaemonRole::AggregatorL1, ledger.clone()))
            .collect();
        for w in daemons.windows(2) {
            w[0].connect_upstream(TransportLink::ugni(), w[1].clone());
        }
        let sink = BufferSink::new();
        daemons
            .last()
            .unwrap()
            .subscribe("darshanConnector", sink.clone());
        ledger.record_published();
        daemons[0].receive(msg("d0", "{}"));
        let got = sink.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].hops, 1999);
        assert_eq!(ledger.delivered(), 1);
    }

    #[test]
    fn daemon_outage_parks_then_delivers_after_restart() {
        let net = LdmsNetwork::build_with(&["nid0".into()], QueueConfig::reliable());
        let down_from = Epoch::from_secs(100);
        let down_until = Epoch::from_secs(140);
        net.apply_faults(&FaultScript::new().daemon_outage("l2", down_from, down_until));
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());

        net.publish(msg_at("nid0", Epoch::from_secs(120)));
        assert_eq!(sink.len(), 0, "L2 is down; nothing delivered yet");
        assert_eq!(net.l1().queued(), 1, "parked at the L1 hop");
        assert!(!net.ledger().balances(), "in flight, not yet accounted");

        let abandoned = net.settle(Epoch::from_secs(200));
        assert_eq!(abandoned, 0);
        let got = sink.take();
        assert_eq!(got.len(), 1);
        assert!(
            got[0].recv_time >= down_until,
            "delivered only after restart"
        );
        assert_eq!(net.ledger().delivered(), 1);
        assert!(net.ledger().balances());
    }

    #[test]
    fn best_effort_outage_is_attributed_not_buffered() {
        let net = LdmsNetwork::build(&["nid0".into()]);
        net.apply_faults(&FaultScript::new().daemon_outage(
            "l2",
            Epoch::from_secs(100),
            Epoch::from_secs(140),
        ));
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        net.publish(msg_at("nid0", Epoch::from_secs(120)));
        assert_eq!(sink.len(), 0);
        assert_eq!(net.l1().queued(), 0, "best effort: nothing parked");
        assert_eq!(net.ledger().lost_with_cause(LossCause::DaemonDown), 1);
        assert_eq!(net.ledger().lost_at("shirley-agg"), 1);
        assert!(net.ledger().balances());
    }

    #[test]
    fn settle_abandons_past_horizon_and_balances() {
        let net = LdmsNetwork::build_with(&["nid0".into()], QueueConfig::reliable());
        // L2 never comes back within the horizon.
        net.apply_faults(&FaultScript::new().daemon_outage(
            "l2",
            Epoch::from_secs(100),
            Epoch::from_secs(10_000),
        ));
        net.l2().subscribe("darshanConnector", BufferSink::new());
        net.publish(msg_at("nid0", Epoch::from_secs(120)));
        let abandoned = net.settle(Epoch::from_secs(200));
        assert_eq!(abandoned, 1);
        assert_eq!(net.ledger().lost_with_cause(LossCause::DaemonDown), 1);
        assert!(net.ledger().balances());
    }

    // ---- crash-recovery and failover ------------------------------

    fn recovery_net(wal: Option<WalConfig>, standby: bool) -> LdmsNetwork {
        LdmsNetwork::build_full(
            &["nid0".into()],
            &NetworkOpts {
                queue: QueueConfig::reliable(),
                standby_l1: standby,
                heartbeat: HeartbeatConfig::default(),
                wal,
                telemetry: None,
                overload: None,
            },
        )
    }

    #[test]
    fn crash_destroys_volatile_queue_without_wal() {
        let net = recovery_net(None, false);
        // L2 down so the message parks at L1; then L1 itself crashes.
        net.apply_faults(
            &FaultScript::new()
                .daemon_outage("l2", Epoch::from_secs(100), Epoch::from_secs(500))
                .crash("l1", Epoch::from_secs(150), Epoch::from_secs(160)),
        );
        net.l2().subscribe("darshanConnector", BufferSink::new());
        net.publish(msg_at("nid0", Epoch::from_secs(120)));
        assert_eq!(net.l1().queued(), 1);
        let abandoned = net.settle(Epoch::from_secs(1000));
        assert_eq!(abandoned, 0, "the crash already consumed the entry");
        assert_eq!(net.ledger().lost_with_cause(LossCause::Crash), 1);
        assert_eq!(net.ledger().lost_at("voltrino-head"), 1);
        assert!(net.ledger().balances());
        assert_eq!(net.recovery_report().crashes, 1);
    }

    #[test]
    fn wal_replay_recovers_parked_messages_across_crash() {
        let net = recovery_net(Some(WalConfig::durable()), false);
        net.apply_faults(
            &FaultScript::new()
                .daemon_outage("l2", Epoch::from_secs(100), Epoch::from_secs(500))
                .crash("l1", Epoch::from_secs(150), Epoch::from_secs(600)),
        );
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        net.publish(msg_at("nid0", Epoch::from_secs(120)).with_seq(1));
        let abandoned = net.settle(Epoch::from_secs(1000));
        assert_eq!(abandoned, 0);
        let got = sink.take();
        assert_eq!(got.len(), 1, "the WAL record was replayed");
        assert!(got[0].replayed);
        assert!(got[0].recv_time >= Epoch::from_secs(600));
        assert_eq!(net.ledger().delivered(), 1);
        assert_eq!(net.ledger().recovered(), 1);
        assert_eq!(net.ledger().lost_with_cause(LossCause::Crash), 0);
        assert!(net.ledger().balances());
        let r = net.recovery_report();
        assert_eq!((r.wal_appended, r.wal_replayed, r.recovered), (1, 1, 1));
    }

    #[test]
    fn duplicate_replay_after_uncheckpointed_completion_is_suppressed() {
        // Completion marks are volatile: deliver, crash before the
        // checkpoint, and the restart replays a duplicate.
        let wal = WalConfig::durable().with_checkpoint_every(1000);
        let net = recovery_net(Some(wal), false);
        net.apply_faults(
            &FaultScript::new()
                .daemon_outage("l2", Epoch::from_secs(100), Epoch::from_secs(110))
                .crash("l1", Epoch::from_secs(120), Epoch::from_secs(130)),
        );
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        net.publish(msg_at("nid0", Epoch::from_secs(105)).with_seq(1));
        net.settle(Epoch::from_secs(1000));
        assert_eq!(sink.len(), 1, "the duplicate never reached the store");
        assert_eq!(net.ledger().delivered(), 1);
        assert_eq!(net.ledger().duplicates(), 1);
        assert_eq!(
            net.ledger().recovered(),
            0,
            "a suppressed dup is no recovery"
        );
        assert!(net.ledger().balances());
    }

    #[test]
    fn standby_failover_elects_after_missed_heartbeats() {
        let net = recovery_net(Some(WalConfig::durable()), true);
        net.apply_faults(&FaultScript::new().crash(
            "l1",
            Epoch::from_secs(100),
            Epoch::from_secs(500),
        ));
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        // Published before detection: parks, then fails over at the
        // heartbeat-detection instant (100 + 3×1 s).
        net.publish(msg_at("nid0", Epoch::from_secs(101)).with_seq(1));
        // Published after detection: fails over at send time.
        net.publish(msg_at("nid0", Epoch::from_secs(200)).with_seq(2));
        net.settle(Epoch::from_secs(400));
        let got = sink.take();
        assert_eq!(got.len(), 2, "both rode the standby route");
        assert!(got.iter().all(|m| m.recv_time < Epoch::from_secs(400)));
        assert_eq!(net.ledger().delivered(), 2);
        assert!(net.ledger().balances());
        let nid = net.node("nid0").unwrap();
        assert_eq!(nid.failovers(), 1);
        assert_eq!(
            nid.active_upstream().unwrap().name(),
            "voltrino-standby",
            "still held by hysteresis"
        );
        let r = net.recovery_report();
        assert!(r.max_failover_latency_s >= 3.0);
    }

    #[test]
    fn failback_returns_to_primary_after_hold() {
        let net = recovery_net(None, true);
        net.apply_faults(&FaultScript::new().crash(
            "l1",
            Epoch::from_secs(100),
            Epoch::from_secs(120),
        ));
        net.l2().subscribe("darshanConnector", BufferSink::new());
        let nid = net.node("nid0").unwrap();
        net.publish(msg_at("nid0", Epoch::from_secs(110)).with_seq(1));
        net.settle(Epoch::from_secs(115));
        assert_eq!(nid.active_upstream().unwrap().name(), "voltrino-standby");
        // Primary back at 120; hold is 10 s — at 125 still standby.
        net.publish(msg_at("nid0", Epoch::from_secs(125)).with_seq(2));
        assert_eq!(nid.active_upstream().unwrap().name(), "voltrino-standby");
        // At 131 the primary has been up ≥ hold: fail back.
        net.publish(msg_at("nid0", Epoch::from_secs(131)).with_seq(3));
        assert_eq!(nid.active_upstream().unwrap().name(), "voltrino-head");
        assert_eq!(nid.failbacks(), 1);
        net.settle(Epoch::from_secs(400));
        assert!(net.ledger().balances());
    }

    // ---- pipeline self-telemetry ----------------------------------

    fn traced_net(wal: Option<WalConfig>) -> (LdmsNetwork, Arc<Telemetry>) {
        let hub = Telemetry::new(iosim_telemetry::TelemetryConfig::trace_all());
        let net = LdmsNetwork::build_full(
            &["nid0".into()],
            &NetworkOpts {
                queue: QueueConfig::reliable(),
                standby_l1: false,
                heartbeat: HeartbeatConfig::default(),
                wal,
                telemetry: Some(hub.clone()),
                overload: None,
            },
        );
        (net, hub)
    }

    #[test]
    fn traced_message_accumulates_publish_forward_ingest_spans() {
        let (net, hub) = traced_net(None);
        net.l2().subscribe("darshanConnector", BufferSink::new());
        let trace = hub.sample(7, 0, 1).expect("trace-all samples everything");
        net.publish(
            msg_at("nid0", Epoch::from_secs(120))
                .with_seq(1)
                .with_origin(7, 0)
                .with_trace(Some(trace)),
        );
        let kinds: Vec<HopKind> = hub.spans().spans_of(trace).iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds.iter().filter(|&&k| k == HopKind::Publish).count(),
            1,
            "one publish span at the producer"
        );
        assert_eq!(
            kinds.iter().filter(|&&k| k == HopKind::Forward).count(),
            2,
            "node→L1 and L1→L2 forwards"
        );
        assert_eq!(kinds.iter().filter(|&&k| k == HopKind::Ingest).count(), 1);
        let sum = hub.latency_summary();
        assert_eq!((sum.traces, sum.end_to_end.count), (1, 1));
        assert!(sum.end_to_end.max > 0, "link delays are nonzero");
        assert!(sum.hop(HopKind::Forward).count == 2);
    }

    #[test]
    fn wal_replay_preserves_trace_id_and_adds_replay_span() {
        let (net, hub) = traced_net(Some(WalConfig::durable()));
        net.apply_faults(
            &FaultScript::new()
                .daemon_outage("l2", Epoch::from_secs(100), Epoch::from_secs(500))
                .crash("l1", Epoch::from_secs(150), Epoch::from_secs(600)),
        );
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        let trace = hub.sample(7, 0, 1).expect("trace-all samples everything");
        net.publish(
            msg_at("nid0", Epoch::from_secs(120))
                .with_seq(1)
                .with_origin(7, 0)
                .with_trace(Some(trace)),
        );
        net.settle(Epoch::from_secs(1000));
        let got = sink.take();
        assert_eq!(got.len(), 1);
        assert!(got[0].replayed);
        assert_eq!(
            got[0].trace,
            Some(trace),
            "replay re-injects the message with its trace context intact"
        );
        let spans = hub.spans().spans_of(trace);
        let replay: Vec<_> = spans.iter().filter(|s| s.kind == HopKind::Replay).collect();
        assert_eq!(replay.len(), 1, "one WAL-replay span");
        assert!(
            replay[0].at >= Epoch::from_secs(600),
            "replayed at the restart instant"
        );
        assert!(
            replay[0].latency >= SimDuration::from_secs(400),
            "time-in-limbo spans the crash window"
        );
        assert!(
            spans.iter().any(|s| s.kind == HopKind::Park),
            "the pre-crash park was traced too"
        );
        assert_eq!(hub.latency_summary().end_to_end.count, 1);
        // The crash also left a flight-recorder dump on the crashed L1.
        let dumps = net.l1().crash_dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].wal_covered, 1, "the lost entry was WAL-covered");
    }

    #[test]
    fn default_network_has_no_recovery_machinery() {
        let net = network();
        assert!(net.standby().is_none());
        assert_eq!(net.l1().wal_capacity(), None);
        net.l2().subscribe("darshanConnector", BufferSink::new());
        net.publish(msg("nid00040", "{}"));
        assert_eq!(net.recovery_report(), RecoveryReport::default());
    }

    // ---- overload control -----------------------------------------

    fn overload_net(rate: f64) -> LdmsNetwork {
        LdmsNetwork::build_full(
            &["nid0".into()],
            &NetworkOpts {
                queue: QueueConfig::reliable().with_capacity(4096),
                overload: Some(
                    crate::overload::OverloadConfig::for_rate(rate)
                        .with_propagation(SimDuration::ZERO)
                        .with_window(SimDuration::from_millis(100)),
                ),
                ..NetworkOpts::default()
            },
        )
    }

    #[test]
    fn storm_degrades_into_summaries_and_ledger_balances() {
        let net = overload_net(50.0);
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        let base = Epoch::from_secs(100);
        const N: u64 = 2000;
        // 2000 bulk events in one virtual second: 40x the 50 msg/s
        // service rate — deep into the Sample state.
        for i in 0..N {
            let at = base + SimDuration::from_micros(i * 500);
            let m = StreamMessage::new(
                "darshanConnector",
                MsgFormat::Json,
                format!("{{\"op\":\"write\",\"len\":4096,\"dur\":0.005,\"i\":{i}}}"),
                "nid0",
                at,
            )
            .with_seq(i + 1)
            .with_origin(7, 0);
            net.publish(m);
        }
        net.settle(base + SimDuration::from_secs(600));
        let ledger = net.ledger();
        assert_eq!(ledger.published(), N);
        assert!(ledger.balances(), "must balance: {}", ledger.summary());
        assert!(ledger.summarized() > 0, "a 40x storm must fold events");
        assert!(
            ledger.accuracy() < 1.0,
            "accuracy below 1 when events were folded"
        );
        let got = sink.take();
        assert!(got.iter().any(|m| m.is_summary()), "sketches reach L2");
        let row_mass: u64 = got.iter().filter(|m| !m.is_summary()).count() as u64;
        let sketch_mass: u64 = got
            .iter()
            .filter(|m| m.is_summary())
            .map(|m| m.weight())
            .sum();
        assert_eq!(
            row_mass + sketch_mass + ledger.total_lost(),
            N,
            "rows + sketch mass + losses cover every published event"
        );
        let hops = net.overload_stats();
        assert!(!hops.is_empty());
        assert!(hops.iter().any(|(_, s)| s.folded_events > 0));
    }

    #[test]
    fn metadata_survives_a_storm_individually() {
        let net = overload_net(50.0);
        let sink = BufferSink::new();
        net.l2().subscribe("darshanConnector", sink.clone());
        let base = Epoch::from_secs(100);
        const N: u64 = 1500;
        for i in 0..N {
            let at = base + SimDuration::from_micros(i * 500);
            // Every 100th event is a metadata open/close record.
            let class = if i % 100 == 0 {
                MsgClass::Meta
            } else {
                MsgClass::Bulk
            };
            let m = StreamMessage::new(
                "darshanConnector",
                MsgFormat::Json,
                format!("{{\"op\":\"open\",\"len\":0,\"dur\":0.001,\"i\":{i}}}"),
                "nid0",
                at,
            )
            .with_seq(i + 1)
            .with_origin(7, 0)
            .with_class(class);
            net.publish(m);
        }
        net.settle(base + SimDuration::from_secs(600));
        assert!(net.ledger().balances());
        let got = sink.take();
        let delivered_meta: Vec<u64> = got
            .iter()
            .filter(|m| m.class == MsgClass::Meta)
            .filter_map(|m| m.seq)
            .collect();
        let expected: Vec<u64> = (0..N).filter(|i| i % 100 == 0).map(|i| i + 1).collect();
        assert_eq!(
            delivered_meta, expected,
            "every metadata event delivered individually, in order"
        );
    }

    #[test]
    fn calm_traffic_is_untouched_by_an_attached_controller() {
        // Two identical networks, one with a controller: under calm
        // load the delivered rows must be byte-identical.
        let run = |overload: bool| {
            let net = if overload {
                overload_net(1000.0)
            } else {
                LdmsNetwork::build_full(
                    &["nid0".into()],
                    &NetworkOpts {
                        queue: QueueConfig::reliable().with_capacity(4096),
                        ..NetworkOpts::default()
                    },
                )
            };
            let sink = BufferSink::new();
            net.l2().subscribe("darshanConnector", sink.clone());
            let base = Epoch::from_secs(100);
            for i in 0..50u64 {
                let at = base + SimDuration::from_millis(i * 100);
                let m = StreamMessage::new(
                    "darshanConnector",
                    MsgFormat::Json,
                    format!("{{\"len\":64,\"dur\":0.001,\"i\":{i}}}"),
                    "nid0",
                    at,
                )
                .with_seq(i + 1)
                .with_origin(7, 0);
                net.publish(m);
            }
            net.settle(base + SimDuration::from_secs(60));
            assert!(net.ledger().balances());
            sink.take()
        };
        let with = run(true);
        let without = run(false);
        assert_eq!(with, without, "calm load: controller is invisible");
    }
}
