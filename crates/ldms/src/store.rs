//! Stream store plugins.
//!
//! The paper's pipeline ends in a store plugin on the L2 aggregator
//! that converts each JSON stream message into CSV rows (Figure 3 shows
//! the exact header) before DSOS ingest. [`CsvStreamStore`] implements
//! that conversion; the DSOS-backed store lives in the connector crate
//! to keep this crate independent of the database.

use crate::stream::{StreamMessage, StreamSink};
use iosim_util::json::{self, JsonValue};
use parking_lot::Mutex;

/// The CSV header of Figure 3 (bottom), in order.
pub const CSV_HEADER: [&str; 24] = [
    "module",
    "uid",
    "ProducerName",
    "switches",
    "file",
    "rank",
    "flushes",
    "record_id",
    "exe",
    "max_byte",
    "type",
    "job_id",
    "op",
    "cnt",
    "seg:off",
    "seg:pt_sel",
    "seg:dur",
    "seg:len",
    "seg:ndims",
    "seg:reg_hslab",
    "seg:irreg_hslab",
    "seg:data_set",
    "seg:npoints",
    "seg:timestamp",
];

/// Renders one JSON field the way the CSV store prints it: `N/A` for
/// missing or null fields, bare scalars otherwise. Exported so typed
/// stores can reproduce the exact CSV accept/reject semantics without
/// materialising the intermediate string row.
pub fn field_to_string(v: Option<&JsonValue>) -> String {
    match v {
        None => "N/A".to_string(),
        Some(JsonValue::Str(s)) => s.clone(),
        Some(JsonValue::Int(i)) => i.to_string(),
        Some(JsonValue::UInt(u)) => u.to_string(),
        Some(JsonValue::Float(f)) => format!("{f}"),
        Some(JsonValue::Bool(b)) => b.to_string(),
        Some(JsonValue::Null) => "N/A".to_string(),
        Some(other) => other.to_string(),
    }
}

/// Flattens one connector JSON message into CSV rows — one row per
/// `seg` entry (the `seg` field "is a list containing multiple
/// name:value pairs", Table I).
pub fn json_to_rows(data: &str) -> Result<Vec<Vec<String>>, json::ParseError> {
    let v = json::parse(data)?;
    let top = |name: &str| field_to_string(v.get(name));
    let segs: Vec<&JsonValue> = match v.get("seg").and_then(JsonValue::as_array) {
        Some(arr) if !arr.is_empty() => arr.iter().collect(),
        _ => Vec::new(),
    };
    let base = [
        top("module"),
        top("uid"),
        top("ProducerName"),
        top("switches"),
        top("file"),
        top("rank"),
        top("flushes"),
        top("record_id"),
        top("exe"),
        top("max_byte"),
        top("type"),
        top("job_id"),
        top("op"),
        top("cnt"),
    ];
    let seg_field =
        |seg: Option<&JsonValue>, name: &str| field_to_string(seg.and_then(|s| s.get(name)));
    let build_row = |seg: Option<&JsonValue>| {
        let mut row = Vec::with_capacity(CSV_HEADER.len());
        row.extend(base.iter().cloned());
        for f in [
            "off",
            "pt_sel",
            "dur",
            "len",
            "ndims",
            "reg_hslab",
            "irreg_hslab",
            "data_set",
            "npoints",
            "timestamp",
        ] {
            row.push(seg_field(seg, f));
        }
        row
    };
    if segs.is_empty() {
        Ok(vec![build_row(None)])
    } else {
        Ok(segs.into_iter().map(|s| build_row(Some(s))).collect())
    }
}

/// A store plugin that converts stream JSON to CSV rows in memory.
#[derive(Default)]
pub struct CsvStreamStore {
    rows: Mutex<Vec<Vec<String>>>,
    parse_errors: Mutex<u64>,
}

impl CsvStreamStore {
    /// Creates an empty store.
    pub fn new() -> std::sync::Arc<Self> {
        std::sync::Arc::new(Self::default())
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.rows.lock().len()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Messages that failed to parse (counted, not fatal — best-effort
    /// pipeline).
    pub fn parse_errors(&self) -> u64 {
        *self.parse_errors.lock()
    }

    /// Snapshot of the stored rows.
    pub fn rows(&self) -> Vec<Vec<String>> {
        self.rows.lock().clone()
    }

    /// Renders header + rows as a CSV document.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("#");
        out.push_str(&iosim_util::csv::encode_row(&CSV_HEADER));
        out.push('\n');
        for row in self.rows.lock().iter() {
            out.push_str(&iosim_util::csv::encode_row(row));
            out.push('\n');
        }
        out
    }
}

impl StreamSink for CsvStreamStore {
    fn deliver(&self, msg: &StreamMessage) {
        match json_to_rows(&msg.data) {
            Ok(mut rows) => self.rows.lock().append(&mut rows),
            Err(_) => *self.parse_errors.lock() += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::MsgFormat;
    use iosim_time::Epoch;

    const SAMPLE: &str = r#"{"uid":99066,"exe":"/apps/mpi-io-test","job_id":259903,"rank":3,
        "ProducerName":"nid00046","file":"/scratch/out.dat","record_id":160154,
        "module":"POSIX","type":"MOD","max_byte":4095,"switches":0,"flushes":-1,"cnt":2,
        "op":"write","seg":[{"data_set":"N/A","pt_sel":-1,"irreg_hslab":-1,"reg_hslab":-1,
        "ndims":-1,"npoints":-1,"off":0,"len":4096,"dur":0.005,"timestamp":1650000000.25}]}"#;

    #[test]
    fn one_seg_one_row_in_header_order() {
        let rows = json_to_rows(SAMPLE).unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.len(), CSV_HEADER.len());
        assert_eq!(row[0], "POSIX"); // module
        assert_eq!(row[5], "3"); // rank
        assert_eq!(row[12], "write"); // op
        assert_eq!(row[17], "4096"); // seg:len
        assert_eq!(row[23], "1650000000.25"); // seg:timestamp
    }

    #[test]
    fn multiple_segs_fan_out_to_rows() {
        let data = r#"{"module":"POSIX","op":"write","rank":0,
            "seg":[{"len":1,"off":0},{"len":2,"off":1},{"len":3,"off":3}]}"#;
        let rows = json_to_rows(data).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2][17], "3");
        // Missing fields become N/A.
        assert_eq!(rows[0][1], "N/A"); // uid absent
    }

    #[test]
    fn message_without_seg_still_produces_a_row() {
        let rows = json_to_rows(r#"{"module":"STDIO","op":"open"}"#).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][14], "N/A"); // seg:off
    }

    #[test]
    fn store_collects_rows_and_counts_errors() {
        let store = CsvStreamStore::new();
        let good = StreamMessage::new(
            "darshanConnector",
            MsgFormat::Json,
            SAMPLE.to_string(),
            "nid00046",
            Epoch::from_secs(1),
        );
        let bad = StreamMessage::new(
            "darshanConnector",
            MsgFormat::Json,
            "{not json".to_string(),
            "nid00046",
            Epoch::from_secs(1),
        );
        store.deliver(&good);
        store.deliver(&bad);
        store.deliver(&good);
        assert_eq!(store.len(), 2);
        assert_eq!(store.parse_errors(), 1);
        let csv = store.to_csv();
        assert!(csv.starts_with("#module,uid,ProducerName"));
        assert_eq!(csv.lines().count(), 3);
    }
}
