//! Sampler plugins and metric sets.
//!
//! Beyond the Darshan stream, LDMS's bread and butter is periodic
//! sampling of system telemetry into *metric sets* (Section II). The
//! paper's analysis vision — correlating I/O variability with "file
//! system, network congestion, etc." — needs that telemetry next to the
//! I/O events, so the reproduction ships synthetic meminfo- and
//! vmstat-style samplers whose values follow the same weather model
//! that drives the file systems.

use iosim_time::Epoch;
use std::collections::BTreeMap;

/// A sampled metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Unsigned counter/gauge.
    U64(u64),
    /// Floating gauge.
    F64(f64),
    /// String-valued metric.
    Str(String),
}

/// One sampled metric set: a schema instance from one producer at one
/// instant.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSet {
    /// Schema name (e.g. "meminfo").
    pub schema: String,
    /// Producer (node) name.
    pub producer: String,
    /// Sample timestamp.
    pub timestamp: Epoch,
    /// Metric name → value.
    pub metrics: BTreeMap<String, MetricValue>,
}

/// A sampler plugin: produces one metric set per sampling interval.
pub trait SamplerPlugin: Send + Sync {
    /// The schema this sampler produces.
    fn schema(&self) -> &str;

    /// Takes one sample at virtual time `now`.
    fn sample(&self, producer: &str, now: Epoch) -> MetricSet;
}

fn unit_noise(seed: u64, t: Epoch) -> f64 {
    // Deterministic hash-based noise in [0, 1).
    let mut z = seed ^ t.as_nanos().wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Synthetic `/proc/meminfo` sampler.
pub struct MeminfoSampler {
    /// Total memory per node (bytes).
    pub mem_total: u64,
    /// Noise seed.
    pub seed: u64,
}

impl SamplerPlugin for MeminfoSampler {
    fn schema(&self) -> &str {
        "meminfo"
    }

    fn sample(&self, producer: &str, now: Epoch) -> MetricSet {
        let used_frac = 0.35 + 0.3 * unit_noise(self.seed, now);
        let used = (self.mem_total as f64 * used_frac) as u64;
        let mut metrics = BTreeMap::new();
        metrics.insert("MemTotal".into(), MetricValue::U64(self.mem_total));
        metrics.insert("MemFree".into(), MetricValue::U64(self.mem_total - used));
        metrics.insert(
            "Cached".into(),
            MetricValue::U64((self.mem_total as f64 * 0.1) as u64),
        );
        MetricSet {
            schema: "meminfo".into(),
            producer: producer.to_string(),
            timestamp: now,
            metrics,
        }
    }
}

/// Synthetic `vmstat`-style sampler with load following a diurnal curve.
pub struct VmstatSampler {
    /// Noise seed.
    pub seed: u64,
}

impl SamplerPlugin for VmstatSampler {
    fn schema(&self) -> &str {
        "vmstat"
    }

    fn sample(&self, producer: &str, now: Epoch) -> MetricSet {
        let tod = now.seconds_of_day() / 86_400.0;
        let load = 0.4
            + 0.3 * (std::f64::consts::TAU * tod).sin().abs()
            + 0.2 * unit_noise(self.seed, now);
        let mut metrics = BTreeMap::new();
        metrics.insert("cpu_load".into(), MetricValue::F64(load));
        metrics.insert(
            "ctx_switches".into(),
            MetricValue::U64((load * 100_000.0) as u64),
        );
        MetricSet {
            schema: "vmstat".into(),
            producer: producer.to_string(),
            timestamp: now,
            metrics,
        }
    }
}

impl MetricSet {
    /// Encodes the set as a JSON stream payload (schema, producer,
    /// timestamp, and the metric map).
    pub fn to_json(&self) -> String {
        let mut w = iosim_util::JsonWriter::with_capacity(256);
        w.begin_object();
        w.field_str("schema", &self.schema);
        w.field_str("ProducerName", &self.producer);
        w.field_float("timestamp", self.timestamp.as_secs_f64());
        w.comma();
        w.key("metrics");
        w.begin_object();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::U64(v) => w.field_uint(name, *v),
                MetricValue::F64(v) => w.field_float(name, *v),
                MetricValue::Str(s) => w.field_str(name, s),
            }
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// Publishes one metric set into the stream pipeline under its schema
/// name as the tag — how system telemetry rides the same transport as
/// the Darshan stream, enabling the paper's "correlate I/O performance
/// variability with system behaviour" analyses.
pub fn publish_metric_set(network: &crate::daemon::LdmsNetwork, set: &MetricSet) {
    network.publish(crate::stream::StreamMessage::new(
        &set.schema,
        crate::stream::MsgFormat::Json,
        set.to_json(),
        &set.producer,
        set.timestamp,
    ));
}

/// Runs a sampler at a fixed interval over a window, like an `ldmsd`
/// sampling loop, returning the collected sets.
pub fn sample_window(
    plugin: &dyn SamplerPlugin,
    producer: &str,
    start: Epoch,
    end: Epoch,
    interval: iosim_time::SimDuration,
) -> Vec<MetricSet> {
    assert!(!interval.is_zero(), "sampling interval must be positive");
    let mut out = Vec::new();
    let mut t = start;
    while t <= end {
        out.push(plugin.sample(producer, t));
        t = t + interval;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_time::SimDuration;

    #[test]
    fn meminfo_is_self_consistent() {
        let s = MeminfoSampler {
            mem_total: 64 << 30,
            seed: 1,
        };
        let set = s.sample("nid00040", Epoch::from_secs(1000));
        let total = match set.metrics["MemTotal"] {
            MetricValue::U64(v) => v,
            _ => panic!(),
        };
        let free = match set.metrics["MemFree"] {
            MetricValue::U64(v) => v,
            _ => panic!(),
        };
        assert!(free < total);
        assert_eq!(set.schema, "meminfo");
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = VmstatSampler { seed: 9 };
        let a = s.sample("n", Epoch::from_secs(5));
        let b = s.sample("n", Epoch::from_secs(5));
        assert_eq!(a, b);
        let c = s.sample("n", Epoch::from_secs(6));
        assert_ne!(a.metrics, c.metrics);
    }

    #[test]
    fn window_produces_expected_count() {
        let s = VmstatSampler { seed: 2 };
        let sets = sample_window(
            &s,
            "nid1",
            Epoch::from_secs(0),
            Epoch::from_secs(60),
            SimDuration::from_secs(10),
        );
        assert_eq!(sets.len(), 7); // 0,10,...,60 inclusive
        assert!(sets.windows(2).all(|w| w[0].timestamp < w[1].timestamp));
    }

    #[test]
    fn metric_sets_publish_through_the_pipeline() {
        use crate::daemon::LdmsNetwork;
        use crate::stream::BufferSink;
        let net = LdmsNetwork::build(&["nid00040".to_string()]);
        let sink = BufferSink::new();
        net.l2().subscribe("vmstat", sink.clone());
        let s = VmstatSampler { seed: 3 };
        for set in sample_window(
            &s,
            "nid00040",
            Epoch::from_secs(0),
            Epoch::from_secs(30),
            SimDuration::from_secs(10),
        ) {
            publish_metric_set(&net, &set);
        }
        let msgs = sink.take();
        assert_eq!(msgs.len(), 4);
        let v = iosim_util::json::parse(&msgs[0].data).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("vmstat"));
        assert!(v.get("metrics").unwrap().get("cpu_load").is_some());
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let s = VmstatSampler { seed: 2 };
        let _ = sample_window(
            &s,
            "n",
            Epoch::from_secs(0),
            Epoch::from_secs(1),
            SimDuration::ZERO,
        );
    }
}
