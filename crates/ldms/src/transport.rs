//! Transport links between LDMS daemons.
//!
//! The paper's deployment pushes stream data over Cray's UGNI transport
//! from compute nodes to the head-node aggregator, then over the site
//! network to the Shirley cluster. Links model per-message latency and
//! bandwidth, accumulate the delay into each message's `recv_time`
//! (the pipeline is asynchronous — the application does *not* wait for
//! delivery, matching the paper's push-based design), and support loss
//! injection to exercise the best-effort semantics.

use crate::stream::StreamMessage;
use iosim_time::SimDuration;
use std::sync::atomic::{AtomicU64, Ordering};

/// A one-way transport link.
#[derive(Debug)]
pub struct TransportLink {
    /// Link name (e.g. "ugni", "site-net").
    pub name: String,
    /// Per-message latency (seconds).
    pub latency_s: f64,
    /// Link bandwidth (bytes/s).
    pub bandwidth: f64,
    /// Drop one message every `n` (0 = never); models best-effort loss.
    drop_every: u64,
    sent: AtomicU64,
    dropped: AtomicU64,
    bytes: AtomicU64,
}

impl TransportLink {
    /// Creates a link with the given performance characteristics.
    pub fn new(name: &str, latency_s: f64, bandwidth: f64) -> Self {
        Self {
            name: name.to_string(),
            latency_s,
            bandwidth,
            drop_every: 0,
            sent: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// UGNI-like defaults for the compute→head hop.
    pub fn ugni() -> Self {
        Self::new("ugni", 3.0e-6, 8.0e9)
    }

    /// Site-network defaults for the head→remote-cluster hop.
    pub fn site_network() -> Self {
        Self::new("site-net", 250.0e-6, 1.0e9)
    }

    /// Enables dropping every `n`-th message (testing best-effort
    /// delivery). 0 disables.
    pub fn with_loss_every(mut self, n: u64) -> Self {
        self.drop_every = n;
        self
    }

    /// Transit time for a message of `bytes`.
    pub fn delay(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(self.latency_s + bytes as f64 / self.bandwidth)
    }

    /// Carries a message across the link: stamps delay and hop count.
    /// Returns `None` when the message is dropped (best effort, no
    /// resend).
    pub fn carry(&self, mut msg: StreamMessage) -> Option<StreamMessage> {
        let n = self.sent.fetch_add(1, Ordering::Relaxed) + 1;
        if self.drop_every > 0 && n % self.drop_every == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.bytes.fetch_add(msg.len() as u64, Ordering::Relaxed);
        msg.recv_time = msg.recv_time + self.delay(msg.len());
        msg.hops += 1;
        Some(msg)
    }

    /// Messages offered to the link.
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Messages dropped by the link.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Bytes carried.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::MsgFormat;
    use iosim_time::Epoch;

    fn msg(data: &str) -> StreamMessage {
        StreamMessage::new("t", MsgFormat::Json, data.to_string(), "nid1", Epoch::from_secs(10))
    }

    #[test]
    fn carry_accumulates_delay_and_hops() {
        let l1 = TransportLink::ugni();
        let l2 = TransportLink::site_network();
        let m = l1.carry(msg("hello")).unwrap();
        let m = l2.carry(m).unwrap();
        assert_eq!(m.hops, 2);
        let total_delay = m.recv_time.since(m.publish_time).as_secs_f64();
        assert!(total_delay >= 250.0e-6);
        assert!(total_delay < 1e-3);
    }

    #[test]
    fn loss_injection_drops_every_nth() {
        let l = TransportLink::ugni().with_loss_every(3);
        let mut delivered = 0;
        for _ in 0..9 {
            if l.carry(msg("x")).is_some() {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 6);
        assert_eq!(l.dropped(), 3);
        assert_eq!(l.sent(), 9);
    }

    #[test]
    fn bandwidth_term_scales_with_size() {
        let l = TransportLink::new("slow", 0.0, 1000.0);
        assert!((l.delay(500).as_secs_f64() - 0.5).abs() < 1e-9);
    }
}
