//! Transport links between LDMS daemons.
//!
//! The paper's deployment pushes stream data over Cray's UGNI transport
//! from compute nodes to the head-node aggregator, then over the site
//! network to the Shirley cluster. Links model per-message latency and
//! bandwidth, accumulate the delay into each message's `recv_time`
//! (the pipeline is asynchronous — the application does *not* wait for
//! delivery, matching the paper's push-based design), and support loss
//! injection to exercise the best-effort semantics.
//!
//! Two loss models coexist: the deterministic `drop_every` period the
//! seed shipped with, and a seeded probabilistic mode (`loss_prob`)
//! whose drops are reproducible per seed. Links also carry a
//! [`Lifecycle`] so a chaos script can flap them for a virtual-time
//! window; a flap is *detectable* by the sender (the connection is
//! down), unlike silent loss, so the daemon layer can park the message
//! for retry instead of offering it to a dead link.

use crate::fault::{AtomicRng, Lifecycle};
use crate::stream::StreamMessage;
use iosim_time::{Epoch, SimDuration};
use std::sync::atomic::{AtomicU64, Ordering};

/// A one-way transport link.
#[derive(Debug)]
pub struct TransportLink {
    /// Link name (e.g. "ugni", "site-net").
    pub name: String,
    /// Per-message latency (seconds).
    pub latency_s: f64,
    /// Link bandwidth (bytes/s).
    pub bandwidth: f64,
    /// Drop one message every `n` (0 = never); models best-effort loss.
    drop_every: AtomicU64,
    /// Per-message drop probability in `[0, 1]`, stored as f64 bits
    /// (0 = never).
    loss_prob_bits: AtomicU64,
    rng: AtomicRng,
    lifecycle: Lifecycle,
    sent: AtomicU64,
    dropped: AtomicU64,
    bytes: AtomicU64,
}

impl TransportLink {
    /// Creates a link with the given performance characteristics.
    pub fn new(name: &str, latency_s: f64, bandwidth: f64) -> Self {
        Self {
            name: name.to_string(),
            latency_s,
            bandwidth,
            drop_every: AtomicU64::new(0),
            loss_prob_bits: AtomicU64::new(0f64.to_bits()),
            rng: AtomicRng::new(0),
            lifecycle: Lifecycle::new(),
            sent: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// UGNI-like defaults for the compute→head hop.
    pub fn ugni() -> Self {
        Self::new("ugni", 3.0e-6, 8.0e9)
    }

    /// Site-network defaults for the head→remote-cluster hop.
    pub fn site_network() -> Self {
        Self::new("site-net", 250.0e-6, 1.0e9)
    }

    /// Enables dropping every `n`-th message (testing best-effort
    /// delivery). 0 disables.
    pub fn with_loss_every(self, n: u64) -> Self {
        self.drop_every.store(n, Ordering::Relaxed);
        self
    }

    /// Enables seeded probabilistic loss: each carried message is
    /// dropped with probability `prob`. 0 disables.
    pub fn with_loss_prob(self, prob: f64, seed: u64) -> Self {
        self.set_loss_prob(prob, seed);
        self
    }

    /// Reconfigures probabilistic loss on a live link.
    pub fn set_loss_prob(&self, prob: f64, seed: u64) {
        self.loss_prob_bits
            .store(prob.clamp(0.0, 1.0).to_bits(), Ordering::Relaxed);
        self.rng.reseed(seed);
    }

    /// Reconfigures deterministic every-`n`-th loss on a live link.
    pub fn set_drop_every(&self, n: u64) {
        self.drop_every.store(n, Ordering::Relaxed);
    }

    /// Current probabilistic drop rate.
    pub fn loss_prob(&self) -> f64 {
        f64::from_bits(self.loss_prob_bits.load(Ordering::Relaxed))
    }

    /// Schedules a connectivity outage (flap) for `[from, until)` in
    /// virtual time. A down link refuses messages outright — the
    /// failure is visible to the sender, so the daemon layer can park
    /// the message for retry rather than losing it silently.
    pub fn schedule_flap(&self, from: Epoch, until: Epoch) {
        self.lifecycle.schedule_down(from, until);
    }

    /// True when the link is flapped down at `t`.
    pub fn is_down(&self, t: Epoch) -> bool {
        !self.lifecycle.is_up(t)
    }

    /// Earliest instant `>= t` at which the link is up again.
    pub fn next_up(&self, t: Epoch) -> Epoch {
        self.lifecycle.next_up(t)
    }

    /// Start of the contiguous flap window containing `t` (`None`
    /// when the link is up). Heartbeat-based route election measures
    /// missed beats against this.
    pub fn down_since(&self, t: Epoch) -> Option<Epoch> {
        self.lifecycle.down_since(t)
    }

    /// Instant since which the link has been continuously up at `t`
    /// (`None` when down). Used by failback hysteresis.
    pub fn up_since(&self, t: Epoch) -> Option<Epoch> {
        self.lifecycle.up_since(t)
    }

    /// Transit time for a message of `bytes`.
    pub fn delay(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(self.latency_s + bytes as f64 / self.bandwidth)
    }

    /// Carries a message across the link: stamps delay and hop count.
    /// Returns `None` when the message is dropped (silent loss — the
    /// sender cannot tell; flap windows are checked by the sender via
    /// [`TransportLink::is_down`] *before* offering the message).
    pub fn carry(&self, mut msg: StreamMessage) -> Option<StreamMessage> {
        let n = self.sent.fetch_add(1, Ordering::Relaxed) + 1;
        let drop_every = self.drop_every.load(Ordering::Relaxed);
        if drop_every > 0 && n % drop_every == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let loss_prob = self.loss_prob();
        if loss_prob > 0.0 && self.rng.next_f64() < loss_prob {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.bytes.fetch_add(msg.len() as u64, Ordering::Relaxed);
        msg.recv_time = msg.recv_time + self.delay(msg.len());
        msg.hops += 1;
        Some(msg)
    }

    /// Messages offered to the link.
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Messages dropped by the link.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Bytes carried.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::MsgFormat;
    use iosim_time::Epoch;

    fn msg(data: &str) -> StreamMessage {
        StreamMessage::new(
            "t",
            MsgFormat::Json,
            data.to_string(),
            "nid1",
            Epoch::from_secs(10),
        )
    }

    #[test]
    fn carry_accumulates_delay_and_hops() {
        let l1 = TransportLink::ugni();
        let l2 = TransportLink::site_network();
        let m = l1.carry(msg("hello")).unwrap();
        let m = l2.carry(m).unwrap();
        assert_eq!(m.hops, 2);
        let total_delay = m.recv_time.since(m.publish_time).as_secs_f64();
        assert!(total_delay >= 250.0e-6);
        assert!(total_delay < 1e-3);
    }

    #[test]
    fn loss_injection_drops_every_nth() {
        let l = TransportLink::ugni().with_loss_every(3);
        let mut delivered = 0;
        for _ in 0..9 {
            if l.carry(msg("x")).is_some() {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 6);
        assert_eq!(l.dropped(), 3);
        assert_eq!(l.sent(), 9);
    }

    #[test]
    fn probabilistic_loss_is_seeded_and_near_rate() {
        let run = |seed| {
            let l = TransportLink::ugni().with_loss_prob(0.25, seed);
            (0..2000).filter(|_| l.carry(msg("x")).is_none()).count()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed reproduces the same drops");
        assert_ne!(a, run(8), "different seed, different drops");
        let rate = a as f64 / 2000.0;
        assert!((rate - 0.25).abs() < 0.05, "observed rate {rate}");
    }

    #[test]
    fn zero_probability_never_drops() {
        let l = TransportLink::ugni().with_loss_prob(0.0, 1);
        for _ in 0..100 {
            assert!(l.carry(msg("x")).is_some());
        }
        assert_eq!(l.dropped(), 0);
    }

    #[test]
    fn flap_window_marks_link_down() {
        let l = TransportLink::site_network();
        assert!(!l.is_down(Epoch::from_secs(5)));
        l.schedule_flap(Epoch::from_secs(10), Epoch::from_secs(20));
        assert!(l.is_down(Epoch::from_secs(15)));
        assert!(!l.is_down(Epoch::from_secs(20)));
        assert_eq!(l.next_up(Epoch::from_secs(15)), Epoch::from_secs(20));
    }

    #[test]
    fn bandwidth_term_scales_with_size() {
        let l = TransportLink::new("slow", 0.0, 1000.0);
        assert!((l.delay(500).as_secs_f64() - 0.5).abs() < 1e-9);
    }
}
