//! An LDMS (Lightweight Distributed Metric Service) work-alike.
//!
//! LDMS collects and transports HPC telemetry through `ldmsd` daemons:
//! sampler plugins on compute nodes, multi-hop aggregation across
//! daemon levels, and store plugins at the end of the pipeline. The
//! paper's integration leans on two LDMS capabilities, both modelled
//! here:
//!
//! * **LDMS Streams** ([`stream`]) — the publish/subscribe bus the
//!   connector publishes JSON messages to. Semantics follow Section
//!   IV.B: push-based, tag-matched, best-effort ("without a reconnect
//!   or resend"), uncached (published data is only received by parties
//!   already subscribed), and variable-length string/JSON payloads.
//! * **Transport & aggregation** ([`daemon`], [`transport`]) — compute
//!   node daemons push to a first-level aggregator (the paper's head
//!   node) which pushes to a second-level aggregator on another cluster
//!   (Shirley) where the store plugin runs.
//!
//! [`sampler`] adds conventional metric-set sampling (meminfo/vmstat
//! style) so system telemetry can be collected alongside the Darshan
//! stream, which is what enables the paper's "correlate I/O with system
//! behaviour" analyses. [`store`] defines the stream-store interface
//! and a CSV store matching Figure 3's JSON→CSV conversion.
//!
//! On top of the paper's always-up, fire-and-forget pipeline sits a
//! fault-tolerance layer: [`fault`] (daemon/link lifecycles, seeded
//! RNG, declarative chaos scripts), [`queue`] (bounded per-hop
//! store-and-forward retry queues), and [`ledger`] (end-to-end delivery
//! accounting — every published message is eventually counted exactly
//! once as delivered or as lost with a `(hop, cause)` attribution).
//! All of it is opt-in: the default [`queue::QueueConfig::best_effort`]
//! preserves the paper's semantics unchanged.
//!
//! The crash-recovery layer extends that further: [`wal`] (durable
//! write-ahead logs making retry queues survive crash-stop faults),
//! [`heartbeat`] (liveness detection policy driving standby-aggregator
//! failover), and idempotent sequence-keyed terminal delivery in
//! [`ledger`] so a WAL replay never double-counts a row. Again all
//! opt-in — with no crash scripted and no WAL configured, the pipeline
//! behaves byte-identically to the best-effort default.
//!
//! [`overload`] closes the loop on message storms: per-hop
//! backpressure watermarks over a fluid ingress meter, priority
//! classes on [`stream::StreamMessage`], spill-to-WAL buffering, and
//! accuracy-bounded adaptive sampling into first-class summary
//! sketches — every degradation step accounted in the ledger's
//! `summarized` column so conservation still balances exactly.

#![forbid(unsafe_code)]

pub mod batch;
pub mod daemon;
pub mod fault;
pub mod heartbeat;
pub mod ledger;
pub mod overload;
pub mod queue;
pub mod sampler;
pub mod store;
pub mod stream;
pub mod transport;
pub mod wal;

pub use batch::{BatchConfig, FrameRecord};
pub use daemon::{DaemonRole, LdmsNetwork, Ldmsd, NetworkOpts, RecoveryReport};
pub use fault::{FaultScript, FaultSpec, Lifecycle, SimRng};
pub use heartbeat::HeartbeatConfig;
pub use iosim_telemetry::{CrashDump, LatencySummary, Telemetry, TelemetryConfig};
pub use ledger::{DeliveryKey, DeliveryLedger, LossCause, LossRecord};
pub use overload::{OverloadConfig, OverloadController, OverloadState, OverloadStats};
pub use queue::{OverflowPolicy, QueueConfig, RetryQueue};
pub use stream::{MsgClass, MsgFormat, StreamMessage, StreamSink, StreamStats};
pub use transport::TransportLink;
pub use wal::{WalConfig, WalRecord, WalStats, WriteAheadLog};
