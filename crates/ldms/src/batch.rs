//! Frame-level message batching for LDMS streams.
//!
//! The hot path of the paper's pipeline pays a fixed cost per
//! published message: a ledger update, a pump over every daemon's
//! retry queue, and two aggregation hops of lock traffic. Batching
//! divides that cost by the frame size: samplers coalesce consecutive
//! per-rank events into one *frame* — a single [`crate::StreamMessage`]
//! whose payload is a length-prefixed concatenation of the member
//! payloads — and the pipeline forwards, parks, WAL-logs and retries
//! whole frames. Only the terminal daemon unbatches, claiming each
//! member's `(producer, job, rank, seq)` idempotency key individually
//! before dispatching it to the store, so gap detection, dedup, and
//! ingest see exactly the same logical messages as the unbatched path.
//!
//! The frame encoding is text-safe for arbitrary payloads (member
//! payloads may contain newlines or even the frame header itself —
//! every payload is length-prefixed, never scanned):
//!
//! ```text
//! %LDMSFRAME1%<count>\n
//! <seq|-> <payload-bytes>\n
//! <payload>\n
//! ...  (count times)
//! ```

use crate::stream::StreamMessage;
use iosim_time::SimDuration;

/// Magic prefix identifying a frame payload.
pub const FRAME_HEADER: &str = "%LDMSFRAME1%";

/// Sampler-side batching policy: a frame is flushed when it holds
/// `max_messages` records, when its encoded payload would exceed
/// `max_bytes`, or when virtual time has advanced `max_delay` past the
/// frame's first record (checked at the next event and at rank end, so
/// a frame never outlives its publisher).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// Flush after this many records (`<= 1` disables batching).
    pub max_messages: usize,
    /// Flush before the summed member payloads exceed this.
    pub max_bytes: usize,
    /// Flush when the oldest buffered record is this old.
    pub max_delay: SimDuration,
}

impl BatchConfig {
    /// Batching disabled: every event publishes immediately as a plain
    /// message — the seed path, byte-for-byte.
    pub fn disabled() -> Self {
        Self {
            max_messages: 1,
            max_bytes: usize::MAX,
            max_delay: SimDuration::from_secs(0),
        }
    }

    /// Count-bound batching with a generous byte cap and a 1 s
    /// time bound.
    pub fn frames_of(max_messages: usize) -> Self {
        Self {
            max_messages,
            max_bytes: 1 << 20,
            max_delay: SimDuration::from_secs(1),
        }
    }

    /// Byte-bound override.
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// Time-bound override.
    pub fn with_max_delay(mut self, max_delay: SimDuration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// True when this configuration actually batches.
    pub fn enabled(&self) -> bool {
        self.max_messages > 1
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// One member of a frame: the original message's sequence number (if
/// any) and its payload, verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRecord {
    /// Per-publisher sequence number of the member message.
    pub seq: Option<u64>,
    /// Member payload bytes, exactly as the unbatched message would
    /// have carried them.
    pub payload: String,
}

/// Why a frame payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The payload does not start with [`FRAME_HEADER`].
    NotAFrame,
    /// A structural element (count, record header, terminator) was
    /// missing or malformed.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::NotAFrame => f.write_str("payload is not an LDMS batch frame"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

/// True when `data` looks like a frame payload.
pub fn is_frame_payload(data: &str) -> bool {
    data.starts_with(FRAME_HEADER)
}

/// Encodes records into one frame payload. Round-trips any member
/// payloads, including empty strings and strings containing the frame
/// header or record separators.
pub fn encode_frame(records: &[FrameRecord]) -> String {
    let body_len: usize = records.iter().map(|r| r.payload.len() + 32).sum();
    let mut out = String::with_capacity(FRAME_HEADER.len() + 16 + body_len);
    out.push_str(FRAME_HEADER);
    out.push_str(&records.len().to_string());
    out.push('\n');
    for r in records {
        match r.seq {
            Some(seq) => out.push_str(&seq.to_string()),
            None => out.push('-'),
        }
        out.push(' ');
        out.push_str(&r.payload.len().to_string());
        out.push('\n');
        out.push_str(&r.payload);
        out.push('\n');
    }
    out
}

/// Decodes a frame payload back into its member records.
pub fn decode_frame(data: &str) -> Result<Vec<FrameRecord>, FrameError> {
    let rest = data
        .strip_prefix(FRAME_HEADER)
        .ok_or(FrameError::NotAFrame)?;
    let nl = rest
        .find('\n')
        .ok_or(FrameError::Malformed("missing count line"))?;
    let count: usize = rest[..nl]
        .parse()
        .map_err(|_| FrameError::Malformed("bad record count"))?;
    let mut pos = nl + 1;
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let head_end = rest[pos..]
            .find('\n')
            .map(|i| pos + i)
            .ok_or(FrameError::Malformed("missing record header"))?;
        let header = &rest[pos..head_end];
        let (seq_s, len_s) = header
            .split_once(' ')
            .ok_or(FrameError::Malformed("bad record header"))?;
        let seq = if seq_s == "-" {
            None
        } else {
            Some(
                seq_s
                    .parse()
                    .map_err(|_| FrameError::Malformed("bad record seq"))?,
            )
        };
        let len: usize = len_s
            .parse()
            .map_err(|_| FrameError::Malformed("bad record length"))?;
        let start = head_end + 1;
        let payload = rest
            .get(start..start + len)
            .ok_or(FrameError::Malformed("record payload truncated"))?;
        if rest.as_bytes().get(start + len) != Some(&b'\n') {
            return Err(FrameError::Malformed("missing record terminator"));
        }
        records.push(FrameRecord {
            seq,
            payload: payload.to_string(),
        });
        pos = start + len + 1;
    }
    if pos != rest.len() {
        return Err(FrameError::Malformed("trailing bytes after last record"));
    }
    Ok(records)
}

/// Reconstructs the member messages of a frame, carrying over the
/// frame's transport context (tag, format, producer, timing, hops,
/// origin, replay flag) and restoring each member's own sequence
/// number. Inverse of framing up to the fields batching deliberately
/// coarsens: members share the frame's publish/recv times.
pub fn unbatch(frame: &StreamMessage, records: Vec<FrameRecord>) -> Vec<StreamMessage> {
    records
        .into_iter()
        .map(|r| StreamMessage {
            tag: frame.tag.clone(),
            format: frame.format,
            data: std::sync::Arc::from(r.payload.as_str()),
            producer: frame.producer.clone(),
            publish_time: frame.publish_time,
            recv_time: frame.recv_time,
            hops: frame.hops,
            seq: r.seq,
            origin: frame.origin,
            replayed: frame.replayed,
            batch: 0,
            trace: frame.trace,
            class: frame.class,
            summary_count: 0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::MsgFormat;
    use iosim_time::Epoch;

    fn rec(seq: Option<u64>, payload: &str) -> FrameRecord {
        FrameRecord {
            seq,
            payload: payload.to_string(),
        }
    }

    #[test]
    fn frame_round_trips_plain_records() {
        let records = vec![rec(Some(1), r#"{"op":"open"}"#), rec(Some(2), "")];
        let encoded = encode_frame(&records);
        assert!(is_frame_payload(&encoded));
        assert_eq!(decode_frame(&encoded).unwrap(), records);
    }

    #[test]
    fn frame_round_trips_adversarial_payloads() {
        let records = vec![
            rec(None, FRAME_HEADER),
            rec(Some(u64::MAX), "a\nb\nc - 17\n"),
            rec(Some(0), &encode_frame(&[rec(Some(9), "nested")])),
            rec(None, "héllo 世界 🦀"),
        ];
        assert_eq!(decode_frame(&encode_frame(&records)).unwrap(), records);
    }

    #[test]
    fn empty_frame_round_trips() {
        let encoded = encode_frame(&[]);
        assert_eq!(decode_frame(&encoded).unwrap(), vec![]);
    }

    #[test]
    fn truncated_and_corrupt_frames_are_rejected() {
        let good = encode_frame(&[rec(Some(5), "payload")]);
        assert_eq!(decode_frame("{}"), Err(FrameError::NotAFrame));
        assert!(decode_frame(&good[..good.len() - 3]).is_err());
        assert!(decode_frame(&format!("{good}extra")).is_err());
        assert!(decode_frame(&format!("{FRAME_HEADER}xyz\n")).is_err());
    }

    #[test]
    fn unbatch_restores_member_identity() {
        let records = vec![rec(Some(4), "a"), rec(Some(5), "b")];
        let frame = StreamMessage::new(
            "t",
            MsgFormat::Json,
            encode_frame(&records),
            "nid00001",
            Epoch::from_secs(10),
        )
        .with_origin(7, 3)
        .with_batch(2);
        assert_eq!(frame.weight(), 2);
        let members = unbatch(&frame, records);
        assert_eq!(members.len(), 2);
        assert_eq!(members[0].seq, Some(4));
        assert_eq!(members[0].data.as_ref(), "a");
        assert_eq!(members[1].delivery_key().unwrap().3, 5);
        assert!(members.iter().all(|m| !m.is_frame() && m.weight() == 1));
        assert_eq!(members[0].origin, Some((7, 3)));
    }

    /// A frame carrying a trace context hands it to every unbatched
    /// member, so a sampled message stays traceable across the
    /// batch/unbatch boundary; an untraced frame yields untraced
    /// members.
    #[test]
    fn unbatch_propagates_trace_context() {
        let records = vec![rec(Some(1), "a"), rec(Some(2), "b")];
        let mk = |trace| {
            StreamMessage::new(
                "t",
                MsgFormat::Json,
                encode_frame(&records),
                "nid00001",
                Epoch::from_secs(10),
            )
            .with_batch(2)
            .with_trace(trace)
        };
        let traced = unbatch(&mk(Some(0xBEEF)), records.clone());
        assert!(traced.iter().all(|m| m.trace == Some(0xBEEF)));
        let untraced = unbatch(&mk(None), records);
        assert!(untraced.iter().all(|m| m.trace.is_none()));
    }

    #[test]
    fn batch_config_thresholds() {
        assert!(!BatchConfig::disabled().enabled());
        assert!(!BatchConfig::default().enabled());
        let b = BatchConfig::frames_of(16);
        assert!(b.enabled());
        assert_eq!(b.max_messages, 16);
    }
}
