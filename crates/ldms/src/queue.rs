//! Bounded store-and-forward retry queues.
//!
//! The paper's pipeline forwards fire-and-forget: a message dropped by
//! a link or addressed to a crashed daemon vanishes. [`RetryQueue`]
//! replaces that with per-upstream-link store-and-forward: a failed
//! send parks the message and retries it in virtual time with
//! exponential backoff plus seeded jitter. The queue is *bounded* —
//! capacity and overflow policy are explicit — so a long outage
//! degrades into quantified loss instead of unbounded memory growth.
//!
//! The default configuration ([`QueueConfig::best_effort`]) disables
//! queueing entirely (one attempt, zero capacity), preserving the
//! paper's semantics byte for byte; [`QueueConfig::reliable`] is the
//! store-and-forward preset.

use crate::fault::AtomicRng;
use crate::ledger::LossCause;
use crate::stream::{MsgClass, StreamMessage};
use iosim_time::{Epoch, SimDuration};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// What to do when a message arrives at a full queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OverflowPolicy {
    /// Evict the oldest parked message to admit the new one.
    DropOldest,
    /// Reject the new message.
    DropNewest,
    /// Admit beyond capacity, but bound each parked message's sojourn
    /// time: a message still parked this long after it was first
    /// queued is dropped ([`LossCause::DeadlineExceeded`]). This is
    /// the non-blocking analogue of "block the sender with a
    /// deadline" — the simulation cannot stall the publishing rank,
    /// so the bound moves from the sender's wait to the queue's
    /// holding time.
    BlockWithDeadline(SimDuration),
}

/// Retry/queue configuration for one upstream hop.
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Maximum parked messages (`DropOldest`/`DropNewest`; the
    /// deadline policy bounds time instead of space).
    pub capacity: usize,
    /// Overflow policy.
    pub policy: OverflowPolicy,
    /// Total send attempts per message (1 = fire-and-forget).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimDuration,
    /// Backoff ceiling.
    pub max_backoff: SimDuration,
    /// Multiplier applied per retry.
    pub backoff_factor: f64,
    /// Jitter half-width as a fraction of the backoff (0 = none).
    pub jitter: f64,
    /// Seed for the jitter RNG (reproducible schedules).
    pub seed: u64,
    /// Shed by priority class on `DropOldest` overflow: evict the
    /// oldest *bulk* entry first, then summaries, and metadata last.
    /// `false` (the default) keeps strict FIFO eviction, so existing
    /// topologies are byte-identical.
    pub priority_shed: bool,
}

impl QueueConfig {
    /// The paper's semantics: one attempt, nothing parked. This is
    /// `Default`, so existing topologies behave exactly as before.
    pub fn best_effort() -> Self {
        Self {
            capacity: 0,
            policy: OverflowPolicy::DropNewest,
            max_attempts: 1,
            base_backoff: SimDuration::from_millis(1),
            max_backoff: SimDuration::from_secs(1),
            backoff_factor: 2.0,
            jitter: 0.0,
            seed: 0,
            priority_shed: false,
        }
    }

    /// Store-and-forward preset: a bounded queue with exponential
    /// backoff and 10 % jitter.
    pub fn reliable() -> Self {
        Self {
            capacity: 1024,
            policy: OverflowPolicy::DropOldest,
            max_attempts: 8,
            base_backoff: SimDuration::from_millis(1),
            max_backoff: SimDuration::from_secs(1),
            backoff_factor: 2.0,
            jitter: 0.1,
            seed: 0x5EED,
            priority_shed: false,
        }
    }

    /// Sets the capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the overflow policy.
    pub fn with_policy(mut self, policy: OverflowPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the attempt budget.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Sets the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables priority-class shedding on `DropOldest` overflow.
    pub fn with_priority_shed(mut self, on: bool) -> Self {
        self.priority_shed = on;
        self
    }

    /// True when a failed send may park the message for retry.
    pub fn retries_enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Virtual time the retry schedule spans with zero jitter: the sum
    /// of every backoff interval a message consumes before exhausting
    /// its attempt budget, each clamped to `max_backoff`. Static
    /// analysis scales this by `1 ± jitter/2` to bracket the seeded
    /// schedules the queue actually draws.
    pub fn backoff_coverage(&self) -> SimDuration {
        let mut total = 0.0f64;
        for attempt in 1..self.max_attempts {
            let exp = attempt.saturating_sub(1).min(32);
            let base =
                self.base_backoff.as_secs_f64() * self.backoff_factor.max(1.0).powi(exp as i32);
            total += base.min(self.max_backoff.as_secs_f64());
        }
        SimDuration::from_secs_f64(total)
    }
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self::best_effort()
    }
}

/// One parked message awaiting retry.
#[derive(Debug, Clone)]
pub(crate) struct QueueEntry {
    /// The message, as it stood *before* the failed hop (transport
    /// delay and hop count are re-applied on the successful attempt).
    pub msg: StreamMessage,
    /// Send attempts consumed so far.
    pub attempts: u32,
    /// Earliest virtual instant of the next attempt.
    pub next_attempt: Epoch,
    /// Sojourn deadline (`BlockWithDeadline` only).
    pub expire: Option<Epoch>,
    /// Why the last attempt failed (loss attribution if abandoned).
    pub cause: LossCause,
    /// LSN of the durable WAL record backing this entry, when the
    /// hop's write-ahead log accepted it (`None` = volatile-only).
    pub lsn: Option<u64>,
}

/// A bounded retry queue for one upstream hop.
#[derive(Debug)]
pub struct RetryQueue {
    config: QueueConfig,
    entries: Mutex<VecDeque<QueueEntry>>,
    rng: AtomicRng,
    parked_total: AtomicU64,
    overflowed: AtomicU64,
    high_water: AtomicU64,
}

impl RetryQueue {
    /// Creates a queue with the given configuration.
    pub fn new(config: QueueConfig) -> Self {
        let rng = AtomicRng::new(config.seed);
        Self {
            config,
            entries: Mutex::new(VecDeque::new()),
            rng,
            parked_total: AtomicU64::new(0),
            overflowed: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &QueueConfig {
        &self.config
    }

    /// Currently parked messages.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Messages ever parked (retry admissions, not attempts).
    pub fn parked_total(&self) -> u64 {
        self.parked_total.load(Ordering::Relaxed)
    }

    /// Messages evicted by the overflow policy.
    pub fn overflowed(&self) -> u64 {
        self.overflowed.load(Ordering::Relaxed)
    }

    /// Deepest the queue has ever been (entries, frames counting as
    /// one — this measures buffer pressure, not logical messages).
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    fn note_depth(&self, depth: usize) {
        self.high_water.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Computes the instant of the next attempt after a failure at
    /// `now`, given the attempts consumed so far: exponential backoff
    /// with jitter, clamped to the ceiling, always strictly after
    /// `now` so retry draining makes progress.
    pub(crate) fn backoff_after(&self, attempts: u32, now: Epoch) -> Epoch {
        let exp = attempts.saturating_sub(1).min(32);
        let base = self.config.base_backoff.as_secs_f64()
            * self.config.backoff_factor.max(1.0).powi(exp as i32);
        let capped = base.min(self.config.max_backoff.as_secs_f64());
        let jittered = if self.config.jitter > 0.0 {
            capped * (1.0 + self.config.jitter * (self.rng.next_f64() - 0.5))
        } else {
            capped
        };
        now + SimDuration::from_nanos(((jittered * 1e9) as u64).max(1))
    }

    /// Index of the entry to evict under priority shedding: the
    /// oldest entry of the least-protected class present — bulk
    /// records first, then summary sketches, metadata (open/close)
    /// last. Within a class, FIFO.
    fn shed_victim(&self, entries: &VecDeque<QueueEntry>) -> Option<usize> {
        for class in [MsgClass::Bulk, MsgClass::Summary, MsgClass::Meta] {
            if let Some(i) = entries.iter().position(|e| e.msg.class == class) {
                return Some(i);
            }
        }
        None
    }

    /// Parks an entry, applying the overflow policy. Returns the
    /// entries evicted to admit it (each to be attributed by the
    /// caller), with the incoming entry itself returned if rejected.
    pub(crate) fn push(&self, mut entry: QueueEntry, now: Epoch) -> Vec<QueueEntry> {
        let mut entries = self.entries.lock();
        if let OverflowPolicy::BlockWithDeadline(d) = self.config.policy {
            entry.expire.get_or_insert(now + d);
            self.parked_total.fetch_add(1, Ordering::Relaxed);
            entries.push_back(entry);
            self.note_depth(entries.len());
            return Vec::new();
        }
        if entries.len() < self.config.capacity {
            self.parked_total.fetch_add(1, Ordering::Relaxed);
            entries.push_back(entry);
            self.note_depth(entries.len());
            return Vec::new();
        }
        match self.config.policy {
            OverflowPolicy::DropOldest => {
                let mut evicted = Vec::new();
                while entries.len() + 1 > self.config.capacity {
                    let victim = if self.config.priority_shed {
                        self.shed_victim(&entries)
                    } else {
                        entries.front().map(|_| 0)
                    };
                    match victim.and_then(|i| entries.remove(i)) {
                        Some(mut old) => {
                            old.cause = LossCause::QueueOverflow;
                            evicted.push(old);
                        }
                        None => break, // capacity 0: nothing to evict
                    }
                }
                // Overflow is counted in logical-message weight, so a
                // dropped frame of N members shows up as N, matching
                // the ledger's loss column.
                self.overflowed.fetch_add(
                    evicted.iter().map(|e| e.msg.weight()).sum::<u64>(),
                    Ordering::Relaxed,
                );
                if self.config.capacity > 0 {
                    self.parked_total.fetch_add(1, Ordering::Relaxed);
                    entries.push_back(entry);
                    self.note_depth(entries.len());
                    debug_assert!(
                        entries.len() <= self.config.capacity,
                        "drop-oldest queue grew past capacity: {} > {}",
                        entries.len(),
                        self.config.capacity
                    );
                    evicted
                } else {
                    entry.cause = LossCause::QueueOverflow;
                    self.overflowed
                        .fetch_add(entry.msg.weight(), Ordering::Relaxed);
                    evicted.push(entry);
                    evicted
                }
            }
            OverflowPolicy::DropNewest => {
                entry.cause = LossCause::QueueOverflow;
                self.overflowed
                    .fetch_add(entry.msg.weight(), Ordering::Relaxed);
                debug_assert!(
                    entries.len() <= self.config.capacity,
                    "drop-newest queue grew past capacity: {} > {}",
                    entries.len(),
                    self.config.capacity
                );
                vec![entry]
            }
            OverflowPolicy::BlockWithDeadline(_) => unreachable!("handled above"),
        }
    }

    /// Removes and returns entries whose sojourn deadline has passed.
    pub(crate) fn take_expired(&self, now: Epoch) -> Vec<QueueEntry> {
        let mut entries = self.entries.lock();
        let mut expired = Vec::new();
        entries.retain(|e| match e.expire {
            Some(deadline) if deadline <= now => {
                expired.push(QueueEntry {
                    cause: LossCause::DeadlineExceeded,
                    ..e.clone()
                });
                false
            }
            _ => true,
        });
        expired
    }

    /// Pops the first entry (FIFO) whose retry time has come.
    pub(crate) fn pop_due(&self, now: Epoch) -> Option<QueueEntry> {
        let mut entries = self.entries.lock();
        let idx = entries.iter().position(|e| e.next_attempt <= now)?;
        entries.remove(idx)
    }

    /// Earliest instant at which anything parked becomes actionable
    /// (a retry coming due or a deadline expiring).
    pub(crate) fn next_event(&self) -> Option<Epoch> {
        self.entries
            .lock()
            .iter()
            .map(|e| match e.expire {
                Some(d) => e.next_attempt.min(d),
                None => e.next_attempt,
            })
            .min()
    }

    /// Drains every parked entry (used when settling a campaign: what
    /// remains is attributed as lost).
    pub(crate) fn drain_all(&self) -> Vec<QueueEntry> {
        self.entries.lock().drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::MsgFormat;

    fn entry(tag: &str, at: u64) -> QueueEntry {
        QueueEntry {
            msg: StreamMessage::new(
                tag,
                MsgFormat::Json,
                "{}".to_string(),
                "nid0",
                Epoch::from_secs(at),
            ),
            attempts: 1,
            next_attempt: Epoch::from_secs(at),
            expire: None,
            cause: LossCause::LinkLoss,
            lsn: None,
        }
    }

    #[test]
    fn default_is_best_effort() {
        let q = RetryQueue::new(QueueConfig::default());
        assert!(!q.config().retries_enabled());
        assert_eq!(q.config().capacity, 0);
    }

    #[test]
    fn drop_oldest_evicts_front() {
        let q = RetryQueue::new(QueueConfig::reliable().with_capacity(2));
        assert!(q.push(entry("a", 1), Epoch::from_secs(1)).is_empty());
        assert!(q.push(entry("b", 2), Epoch::from_secs(2)).is_empty());
        let evicted = q.push(entry("c", 3), Epoch::from_secs(3));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].msg.tag.as_ref(), "a");
        assert_eq!(evicted[0].cause, LossCause::QueueOverflow);
        assert_eq!(q.len(), 2);
        assert_eq!(q.overflowed(), 1);
    }

    #[test]
    fn drop_newest_rejects_incoming() {
        let q = RetryQueue::new(
            QueueConfig::reliable()
                .with_capacity(1)
                .with_policy(OverflowPolicy::DropNewest),
        );
        assert!(q.push(entry("a", 1), Epoch::from_secs(1)).is_empty());
        let evicted = q.push(entry("b", 2), Epoch::from_secs(2));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].msg.tag.as_ref(), "b");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn deadline_policy_bounds_sojourn_not_space() {
        let q = RetryQueue::new(
            QueueConfig::reliable()
                .with_capacity(1)
                .with_policy(OverflowPolicy::BlockWithDeadline(SimDuration::from_secs(5))),
        );
        for i in 0..4 {
            assert!(q.push(entry("m", i), Epoch::from_secs(i)).is_empty());
        }
        assert_eq!(q.len(), 4); // over nominal capacity by design
        let expired = q.take_expired(Epoch::from_secs(6));
        // Entries parked at t=0 and t=1 have deadlines 5 and 6.
        assert_eq!(expired.len(), 2);
        assert!(expired
            .iter()
            .all(|e| e.cause == LossCause::DeadlineExceeded));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_due_is_fifo_among_due() {
        let q = RetryQueue::new(QueueConfig::reliable());
        q.push(entry("later", 50), Epoch::from_secs(1));
        q.push(entry("soon", 2), Epoch::from_secs(1));
        let got = q.pop_due(Epoch::from_secs(10)).unwrap();
        assert_eq!(got.msg.tag.as_ref(), "soon");
        assert!(q.pop_due(Epoch::from_secs(10)).is_none());
        assert_eq!(q.next_event(), Some(Epoch::from_secs(50)));
    }

    #[test]
    fn priority_shed_evicts_bulk_before_meta() {
        let q = RetryQueue::new(
            QueueConfig::reliable()
                .with_capacity(3)
                .with_priority_shed(true),
        );
        let classed = |tag: &str, at: u64, class: MsgClass| {
            let mut e = entry(tag, at);
            e.msg.class = class;
            e
        };
        q.push(classed("meta", 1, MsgClass::Meta), Epoch::from_secs(1));
        q.push(classed("bulk-old", 2, MsgClass::Bulk), Epoch::from_secs(2));
        q.push(classed("bulk-new", 3, MsgClass::Bulk), Epoch::from_secs(3));
        // Oldest bulk goes first, even though the meta entry is older.
        let evicted = q.push(classed("in1", 4, MsgClass::Bulk), Epoch::from_secs(4));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].msg.tag.as_ref(), "bulk-old");
        // Then the remaining bulk entries, newest admission included.
        let evicted = q.push(classed("sum", 5, MsgClass::Summary), Epoch::from_secs(5));
        assert_eq!(evicted[0].msg.tag.as_ref(), "bulk-new");
        let evicted = q.push(classed("in2", 6, MsgClass::Meta), Epoch::from_secs(6));
        assert_eq!(evicted[0].msg.tag.as_ref(), "in1");
        // No bulk left: summaries shed before metadata.
        let evicted = q.push(classed("in3", 7, MsgClass::Meta), Epoch::from_secs(7));
        assert_eq!(evicted[0].msg.tag.as_ref(), "sum");
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn without_priority_shed_eviction_stays_fifo() {
        let q = RetryQueue::new(QueueConfig::reliable().with_capacity(2));
        let mut meta = entry("meta", 1);
        meta.msg.class = MsgClass::Meta;
        q.push(meta, Epoch::from_secs(1));
        q.push(entry("bulk", 2), Epoch::from_secs(2));
        let evicted = q.push(entry("c", 3), Epoch::from_secs(3));
        assert_eq!(evicted[0].msg.tag.as_ref(), "meta");
    }

    #[test]
    fn overflow_counter_is_logical_message_weight() {
        let q = RetryQueue::new(QueueConfig::reliable().with_capacity(1));
        let mut frame = entry("frame", 1);
        frame.msg.batch = 16;
        q.push(frame, Epoch::from_secs(1));
        q.push(entry("b", 2), Epoch::from_secs(2));
        assert_eq!(q.overflowed(), 16, "evicted frame counts its members");
        // Capacity-0 rejection also counts weight, not frames.
        let q0 = RetryQueue::new(QueueConfig::reliable().with_capacity(0));
        let mut frame = entry("frame", 3);
        frame.msg.batch = 4;
        let evicted = q0.push(frame, Epoch::from_secs(3));
        assert_eq!(evicted.len(), 1);
        assert_eq!(q0.overflowed(), 4);
        // DropNewest likewise.
        let qn = RetryQueue::new(
            QueueConfig::reliable()
                .with_capacity(1)
                .with_policy(OverflowPolicy::DropNewest),
        );
        qn.push(entry("a", 4), Epoch::from_secs(4));
        let mut frame = entry("frame", 5);
        frame.msg.batch = 8;
        qn.push(frame, Epoch::from_secs(5));
        assert_eq!(qn.overflowed(), 8);
    }

    #[test]
    fn backoff_grows_and_is_capped() {
        let q = RetryQueue::new(QueueConfig {
            jitter: 0.0,
            ..QueueConfig::reliable()
        });
        let now = Epoch::from_secs(100);
        let b1 = q.backoff_after(1, now).since(now).as_secs_f64();
        let b3 = q.backoff_after(3, now).since(now).as_secs_f64();
        let b20 = q.backoff_after(20, now).since(now).as_secs_f64();
        assert!((b1 - 1e-3).abs() < 1e-9);
        assert!((b3 - 4e-3).abs() < 1e-9);
        assert!((b20 - 1.0).abs() < 1e-9, "capped at max_backoff, got {b20}");
    }

    #[test]
    fn backoff_jitter_is_seeded_and_bounded() {
        let mk = |seed| RetryQueue::new(QueueConfig::reliable().with_seed(seed));
        let now = Epoch::from_secs(0);
        let a: Vec<u64> = (0..4)
            .map(|_| mk(9).backoff_after(2, now).as_nanos())
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|_| mk(9).backoff_after(2, now).as_nanos())
            .collect();
        assert_eq!(a, b, "same seed, same jitter");
        for &ns in &a {
            let s = ns as f64 / 1e9;
            assert!(s > 2e-3 * 0.94 && s < 2e-3 * 1.06, "jitter within ±5%: {s}");
        }
    }
}
