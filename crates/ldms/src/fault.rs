//! Fault injection: component lifecycles, a seeded RNG, and chaos
//! scripts.
//!
//! The paper's deployment is implicitly always-up: daemons never crash
//! and links never flap. Production-scale monitoring cannot assume
//! that, so this module models scheduled *downtime windows* in virtual
//! time ([`Lifecycle`]) for both daemons and transport links, plus a
//! declarative [`FaultScript`] the experiment driver can hand to
//! [`crate::LdmsNetwork::apply_faults`] to run a whole overhead
//! campaign under injected faults. All randomness is drawn from the
//! seeded, reproducible [`SimRng`] so campaigns stay replayable.

use iosim_time::Epoch;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

/// A small deterministic PRNG (splitmix64), used for probabilistic
/// loss and retry jitter. Sequences depend only on the seed.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Next draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// splitmix64 finalizer: avalanches one 64-bit state word.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Lock-free variant of [`SimRng`] for sampling from shared components
/// (a [`crate::TransportLink`] is sampled under a read lock).
#[derive(Debug)]
pub(crate) struct AtomicRng {
    state: AtomicU64,
}

impl AtomicRng {
    pub(crate) fn new(seed: u64) -> Self {
        Self {
            state: AtomicU64::new(seed),
        }
    }

    pub(crate) fn reseed(&self, seed: u64) {
        self.state.store(seed, Ordering::Relaxed);
    }

    pub(crate) fn next_f64(&self) -> f64 {
        let s = self
            .state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        (mix64(s) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Up/Down schedule of one component (daemon or link) in virtual time.
///
/// A component is up unless the queried instant falls inside a
/// scheduled downtime window `[from, until)`. Windows may overlap or
/// chain; [`Lifecycle::next_up`] resolves through all of them.
#[derive(Debug, Default)]
pub struct Lifecycle {
    windows: RwLock<Vec<(Epoch, Epoch)>>,
}

impl Lifecycle {
    /// Creates an always-up lifecycle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a downtime window `[from, until)`. Empty or inverted
    /// windows are ignored.
    pub fn schedule_down(&self, from: Epoch, until: Epoch) {
        if until > from {
            self.windows.write().push((from, until));
        }
    }

    /// True when the component is up at `t`.
    pub fn is_up(&self, t: Epoch) -> bool {
        !self
            .windows
            .read()
            .iter()
            .any(|&(from, until)| from <= t && t < until)
    }

    /// Earliest instant `>= t` at which the component is up. Chained
    /// and overlapping windows are resolved transitively.
    pub fn next_up(&self, t: Epoch) -> Epoch {
        let windows = self.windows.read();
        let mut t = t;
        loop {
            match windows
                .iter()
                .find(|&&(from, until)| from <= t && t < until)
            {
                Some(&(_, until)) => t = until,
                None => return t,
            }
        }
    }

    /// True when no downtime is scheduled at all (fast path).
    pub fn always_up(&self) -> bool {
        self.windows.read().is_empty()
    }

    /// Start of the contiguous downtime containing `t`, resolving
    /// overlapping and chained windows backwards. `None` when the
    /// component is up at `t`. This is what heartbeat-based liveness
    /// detection measures missed beats against.
    pub fn down_since(&self, t: Epoch) -> Option<Epoch> {
        let windows = self.windows.read();
        let mut start = windows
            .iter()
            .find(|&&(from, until)| from <= t && t < until)?
            .0;
        loop {
            match windows
                .iter()
                .find(|&&(from, until)| from < start && until >= start)
            {
                Some(&(from, _)) => start = from,
                None => return Some(start),
            }
        }
    }

    /// Instant since which the component has been continuously up at
    /// `t` (the epoch origin when it never went down). `None` when the
    /// component is down at `t`. Failback hysteresis compares this
    /// against a hold time before trusting a recovered route again.
    pub fn up_since(&self, t: Epoch) -> Option<Epoch> {
        if !self.is_up(t) {
            return None;
        }
        Some(
            self.windows
                .read()
                .iter()
                .filter(|&&(_, until)| until <= t)
                .map(|&(_, until)| until)
                .max()
                .unwrap_or(Epoch::from_nanos(0)),
        )
    }
}

/// One fault to inject. Components are addressed by daemon name; the
/// aliases `"l1"` / `"l2"` address the aggregators of a
/// [`crate::LdmsNetwork`] without knowing their host names. Link
/// faults apply to the *upstream* link owned by the named daemon
/// (e.g. the UGNI hop out of a compute node, or the site-network hop
/// out of the L1 aggregator).
#[derive(Debug, Clone)]
pub enum FaultSpec {
    /// Crash the daemon at `from` and restart it at `until`.
    DaemonOutage {
        /// Daemon name (or `"l1"` / `"l2"`).
        daemon: String,
        /// Crash instant.
        from: Epoch,
        /// Restart instant.
        until: Epoch,
    },
    /// Take the daemon's upstream link down for `[from, until)`.
    LinkFlap {
        /// Owning daemon name (or `"l1"` / `"l2"`).
        daemon: String,
        /// Flap start.
        from: Epoch,
        /// Flap end.
        until: Epoch,
    },
    /// Drop each message crossing the daemon's upstream link with
    /// probability `prob`, sampled from a seeded reproducible RNG.
    LinkLossProb {
        /// Owning daemon name (or `"l1"` / `"l2"`).
        daemon: String,
        /// Per-message drop probability in `[0, 1]`.
        prob: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Drop every `n`-th message crossing the daemon's upstream link
    /// (the deterministic legacy loss model; 0 disables).
    LinkDropEvery {
        /// Owning daemon name (or `"l1"` / `"l2"`).
        daemon: String,
        /// Drop period (0 = never).
        every: u64,
    },
    /// Crash-stop the daemon at `at` and restart it at `restart`.
    /// Unlike [`FaultSpec::DaemonOutage`] — which only makes the
    /// daemon unreachable — a crash *drops all volatile state*: every
    /// message parked in the daemon's retry queue is lost unless a
    /// durable write-ahead log record covers it, in which case it is
    /// replayed on restart.
    Crash {
        /// Daemon name (or `"l1"` / `"l2"` / `"standby"`).
        daemon: String,
        /// Crash instant.
        at: Epoch,
        /// Restart instant (must be after `at`).
        restart: Epoch,
    },
    /// Crash-stop a DSOS storage daemon at `at`: its volatile replica
    /// state is destroyed and it answers no queries until a scripted
    /// [`FaultSpec::RestartDsosd`]. Handled by the DSOS cluster, not
    /// the LDMS transport network.
    CrashDsosd {
        /// Storage daemon name (`"dsosd-0"`) or bare index (`"0"`).
        daemon: String,
        /// Crash instant.
        at: Epoch,
    },
    /// Restart a crashed DSOS storage daemon at `at`; the cluster's
    /// anti-entropy pass rebuilds the returning replica from peers.
    RestartDsosd {
        /// Storage daemon name (`"dsosd-0"`) or bare index (`"0"`).
        daemon: String,
        /// Restart instant.
        at: Epoch,
    },
}

/// A declarative chaos schedule: an ordered list of faults to apply to
/// a network before (or while) a campaign runs.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    specs: Vec<FaultSpec>,
}

impl FaultScript {
    /// Creates an empty script (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a daemon crash/restart window.
    pub fn daemon_outage(mut self, daemon: &str, from: Epoch, until: Epoch) -> Self {
        self.specs.push(FaultSpec::DaemonOutage {
            daemon: daemon.to_string(),
            from,
            until,
        });
        self
    }

    /// Adds a link flap window on the daemon's upstream link.
    pub fn link_flap(mut self, daemon: &str, from: Epoch, until: Epoch) -> Self {
        self.specs.push(FaultSpec::LinkFlap {
            daemon: daemon.to_string(),
            from,
            until,
        });
        self
    }

    /// Adds seeded probabilistic loss on the daemon's upstream link.
    pub fn link_loss_prob(mut self, daemon: &str, prob: f64, seed: u64) -> Self {
        self.specs.push(FaultSpec::LinkLossProb {
            daemon: daemon.to_string(),
            prob,
            seed,
        });
        self
    }

    /// Adds deterministic every-`n`-th loss on the daemon's upstream
    /// link.
    pub fn link_drop_every(mut self, daemon: &str, every: u64) -> Self {
        self.specs.push(FaultSpec::LinkDropEvery {
            daemon: daemon.to_string(),
            every,
        });
        self
    }

    /// Adds a crash-stop/restart pair: the daemon loses all volatile
    /// state at `at` and replays its write-ahead log at `restart`.
    pub fn crash(mut self, daemon: &str, at: Epoch, restart: Epoch) -> Self {
        self.specs.push(FaultSpec::Crash {
            daemon: daemon.to_string(),
            at,
            restart,
        });
        self
    }

    /// Adds a DSOS storage-daemon crash (volatile replica state is
    /// destroyed at `at`).
    pub fn crash_dsosd(mut self, daemon: &str, at: Epoch) -> Self {
        self.specs.push(FaultSpec::CrashDsosd {
            daemon: daemon.to_string(),
            at,
        });
        self
    }

    /// Adds a DSOS storage-daemon restart (anti-entropy rebuild at
    /// `at`).
    pub fn restart_dsosd(mut self, daemon: &str, at: Epoch) -> Self {
        self.specs.push(FaultSpec::RestartDsosd {
            daemon: daemon.to_string(),
            at,
        });
        self
    }

    /// The scripted faults, in order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// True when the script injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_uniform_ish() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        let draws: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(draws, (0..8).map(|_| b.next_u64()).collect::<Vec<_>>());
        let mut c = SimRng::new(43);
        assert_ne!(draws[0], c.next_u64());
        let mean: f64 = (0..1000).map(|_| a.next_f64()).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn lifecycle_windows_and_next_up() {
        let lc = Lifecycle::new();
        assert!(lc.always_up());
        lc.schedule_down(Epoch::from_secs(10), Epoch::from_secs(20));
        lc.schedule_down(Epoch::from_secs(20), Epoch::from_secs(25));
        assert!(lc.is_up(Epoch::from_secs(9)));
        assert!(!lc.is_up(Epoch::from_secs(10)));
        assert!(!lc.is_up(Epoch::from_secs(22)));
        assert!(lc.is_up(Epoch::from_secs(25)));
        // Chained windows resolve transitively.
        assert_eq!(lc.next_up(Epoch::from_secs(15)), Epoch::from_secs(25));
        assert_eq!(lc.next_up(Epoch::from_secs(5)), Epoch::from_secs(5));
    }

    #[test]
    fn down_since_and_up_since_resolve_chained_windows() {
        let lc = Lifecycle::new();
        assert_eq!(lc.up_since(Epoch::from_secs(5)), Some(Epoch::from_nanos(0)));
        assert_eq!(lc.down_since(Epoch::from_secs(5)), None);
        lc.schedule_down(Epoch::from_secs(10), Epoch::from_secs(20));
        lc.schedule_down(Epoch::from_secs(15), Epoch::from_secs(30));
        assert_eq!(
            lc.down_since(Epoch::from_secs(25)),
            Some(Epoch::from_secs(10))
        );
        assert_eq!(lc.up_since(Epoch::from_secs(25)), None);
        assert_eq!(
            lc.up_since(Epoch::from_secs(31)),
            Some(Epoch::from_secs(30))
        );
        assert_eq!(lc.down_since(Epoch::from_secs(9)), None);
    }

    #[test]
    fn inverted_window_is_ignored() {
        let lc = Lifecycle::new();
        lc.schedule_down(Epoch::from_secs(20), Epoch::from_secs(10));
        assert!(lc.always_up());
    }

    #[test]
    fn script_collects_specs_in_order() {
        let s = FaultScript::new()
            .daemon_outage("l2", Epoch::from_secs(1), Epoch::from_secs(2))
            .link_loss_prob("nid00040", 0.25, 7);
        assert_eq!(s.specs().len(), 2);
        assert!(!s.is_empty());
        assert!(matches!(
            s.specs()[1],
            FaultSpec::LinkLossProb { prob, seed: 7, .. } if (prob - 0.25).abs() < 1e-12
        ));
    }
}
