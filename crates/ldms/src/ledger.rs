//! End-to-end delivery accounting.
//!
//! The paper's pipeline is explicitly best-effort: a message dropped in
//! transit, or published with no subscriber listening, simply vanishes.
//! That is acceptable only if the losses are *quantified* — run-time
//! monitoring data is untrustworthy when the observer cannot say how
//! much of it is missing. The [`DeliveryLedger`] closes that gap: every
//! message entering the pipeline through [`crate::LdmsNetwork::publish`]
//! is eventually counted exactly once, either as delivered at the
//! terminal daemon or as lost with a single `(hop, cause)` attribution.
//!
//! The ledger invariant (checked by the integration and property tests):
//!
//! ```text
//! published == delivered + Σ losses(hop, cause) + summarized
//! ```
//!
//! The `summarized` column is the overload controller's mass: events
//! that were folded into a per-(job, rank, window) summary sketch
//! instead of being delivered individually. A delivered sketch moves
//! its folded-event count into `summarized`; a *lost* sketch attributes
//! the same mass to a loss bucket — either way every published event is
//! still counted exactly once.
//!
//! The invariant holds once in-flight retry queues have drained — after
//! [`crate::LdmsNetwork::settle`] — and at any quiescent instant in
//! between.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Idempotency key of one keyed message:
/// `(producer, job_id, rank, seq)`. Messages without a sequence number
/// have no key and are never deduplicated.
pub type DeliveryKey = (Arc<str>, u64, u64, u64);

/// Why a message failed to reach the end of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LossCause {
    /// The terminal daemon had no subscriber for the message's tag
    /// (LDMS Streams does not cache).
    NoSubscriber,
    /// A transport link dropped the message (loss injection or flap),
    /// and retries — if configured — were exhausted.
    LinkLoss,
    /// The receiving daemon was down, and retries — if configured —
    /// were exhausted.
    DaemonDown,
    /// A bounded store-and-forward queue evicted the message.
    QueueOverflow,
    /// The message exceeded its block-with-deadline sojourn budget
    /// while parked in a retry queue.
    DeadlineExceeded,
    /// Forwarding detected a topology cycle (or an absurdly deep
    /// chain) and dropped the message instead of looping.
    CycleDropped,
    /// A crash-stop fault destroyed the message while it sat in a
    /// volatile retry queue with no durable WAL record covering it.
    Crash,
    /// The overload controller spilled the message to the hop's queue
    /// under backpressure and the run ended before it drained.
    Backpressure,
}

impl LossCause {
    /// Stable human-readable label.
    pub fn as_str(self) -> &'static str {
        match self {
            LossCause::NoSubscriber => "no-subscriber",
            LossCause::LinkLoss => "link-loss",
            LossCause::DaemonDown => "daemon-down",
            LossCause::QueueOverflow => "queue-overflow",
            LossCause::DeadlineExceeded => "deadline-exceeded",
            LossCause::CycleDropped => "cycle-dropped",
            LossCause::Crash => "lost-crash",
            LossCause::Backpressure => "backpressure",
        }
    }
}

impl std::fmt::Display for LossCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One attributed loss bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LossRecord {
    /// Where the loss happened (a link, queue, or daemon label).
    pub hop: String,
    /// Why the message was lost.
    pub cause: LossCause,
    /// Messages lost at this hop for this cause.
    pub count: u64,
}

/// Network-wide delivery accounting, shared by every daemon of one
/// [`crate::LdmsNetwork`].
#[derive(Debug, Default)]
pub struct DeliveryLedger {
    published: AtomicU64,
    delivered: AtomicU64,
    losses: Mutex<HashMap<(String, LossCause), u64>>,
    /// Keys of messages already delivered at a terminal daemon; a WAL
    /// replay re-delivering one is a duplicate and is suppressed.
    delivered_keys: Mutex<HashSet<DeliveryKey>>,
    duplicates: AtomicU64,
    recovered: AtomicU64,
    summarized: AtomicU64,
    /// Rows the terminal DSOS store acknowledged at its write quorum —
    /// the storage tier's extension of the conservation law: only
    /// quorum-acked rows are covered by the replication loss guarantee.
    store_acked: AtomicU64,
}

impl DeliveryLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one message entering the pipeline.
    #[cfg(test)]
    pub(crate) fn record_published(&self) {
        self.record_published_n(1);
    }

    /// Counts `n` messages entering the pipeline. A batch frame enters
    /// as one [`crate::StreamMessage`] but accounts for every message
    /// coalesced into it, so the ledger always counts logical messages
    /// regardless of framing.
    pub(crate) fn record_published_n(&self, n: u64) {
        self.published.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one message reaching a subscriber at the terminal daemon.
    pub(crate) fn record_delivered(&self) {
        self.record_delivered_n(1);
    }

    /// Counts `n` messages reaching a subscriber at the terminal.
    pub(crate) fn record_delivered_n(&self, n: u64) {
        self.delivered.fetch_add(n, Ordering::Relaxed);
        self.debug_check_attribution();
    }

    /// Atomically claims the delivery of a keyed message. Returns
    /// `false` when the key was already delivered — the caller must
    /// then suppress the duplicate (neither `delivered` nor any loss
    /// bucket moves, keeping the conservation invariant exact: each
    /// published message is still counted exactly once).
    pub(crate) fn try_claim_delivery(&self, key: DeliveryKey) -> bool {
        if self.delivered_keys.lock().insert(key) {
            true
        } else {
            self.duplicates.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Counts one delivered message that reached the terminal via WAL
    /// replay after a crash — the "demonstrably recovered" counter.
    pub(crate) fn record_recovered(&self) {
        self.record_recovered_n(1);
    }

    /// Counts `n` recovered messages (a replayed frame recovers every
    /// message inside it).
    pub(crate) fn record_recovered_n(&self, n: u64) {
        self.recovered.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `n` published events whose individual delivery was
    /// replaced by a summary sketch reaching the terminal daemon. The
    /// events were counted in `published` when they entered the
    /// pipeline; the sketch carries their mass here instead of into
    /// `delivered`.
    pub(crate) fn record_summarized_n(&self, n: u64) {
        self.summarized.fetch_add(n, Ordering::Relaxed);
        self.debug_check_attribution();
    }

    /// Attributes one lost message to `(hop, cause)`.
    pub(crate) fn record_loss(&self, hop: &str, cause: LossCause) {
        self.record_loss_n(hop, cause, 1);
    }

    /// Attributes `n` lost messages to `(hop, cause)`. Dropping a batch
    /// frame loses every message coalesced into it, so loss accounting
    /// is weighted by frame size.
    pub(crate) fn record_loss_n(&self, hop: &str, cause: LossCause, n: u64) {
        *self
            .losses
            .lock()
            .entry((hop.to_string(), cause))
            .or_insert(0) += n;
        self.debug_check_attribution();
    }

    /// Debug invariant, checked after every attribution: no ledger may
    /// ever account for more outcomes than messages published. Only
    /// binds once publishes are recorded — daemons wired up manually
    /// (private ledgers, direct `receive` calls) never publish, so
    /// their ledgers are exempt. Counters are read attribution-first so
    /// a concurrent publish can only widen the inequality.
    fn debug_check_attribution(&self) {
        if cfg!(debug_assertions) {
            let accounted = self.delivered() + self.total_lost() + self.summarized();
            let published = self.published();
            debug_assert!(
                published == 0 || accounted <= published,
                "ledger over-attributed: delivered+lost = {accounted} > published = {published}"
            );
        }
    }

    /// Messages published into the network.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Messages delivered to at least one subscriber at the terminal
    /// daemon of their path.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Total messages lost, over all hops and causes.
    pub fn total_lost(&self) -> u64 {
        self.losses.lock().values().sum()
    }

    /// Messages lost for a specific cause, over all hops.
    pub fn lost_with_cause(&self, cause: LossCause) -> u64 {
        self.losses
            .lock()
            .iter()
            .filter(|((_, c), _)| *c == cause)
            .map(|(_, n)| n)
            .sum()
    }

    /// Messages lost at a specific hop, over all causes.
    pub fn lost_at(&self, hop: &str) -> u64 {
        self.losses
            .lock()
            .iter()
            .filter(|((h, _), _)| h == hop)
            .map(|(_, n)| n)
            .sum()
    }

    /// Duplicate deliveries suppressed (a WAL replay re-sent a message
    /// whose completion mark a crash had reverted).
    pub fn duplicates(&self) -> u64 {
        self.duplicates.load(Ordering::Relaxed)
    }

    /// Messages delivered via WAL replay after a crash (each counted
    /// inside `delivered` as well — recovery *prevents* a loss, it
    /// never reclassifies one).
    pub fn recovered(&self) -> u64 {
        self.recovered.load(Ordering::Relaxed)
    }

    /// Published events accounted for by a delivered summary sketch
    /// instead of an individual row.
    pub fn summarized(&self) -> u64 {
        self.summarized.load(Ordering::Relaxed)
    }

    /// Counts `n` rows acknowledged at the DSOS write quorum (called
    /// by the terminal store after replicated ingest).
    pub fn record_store_acked_n(&self, n: u64) {
        self.store_acked.fetch_add(n, Ordering::Relaxed);
    }

    /// Rows the terminal DSOS store acknowledged at its write quorum.
    /// Orthogonal to `balances()`: a delivered message whose row missed
    /// the quorum is still delivered — it is just not covered by the
    /// replication guarantee, and a degraded query's `Completeness`
    /// report balances against this figure.
    pub fn store_acked(&self) -> u64 {
        self.store_acked.load(Ordering::Relaxed)
    }

    /// True when every published message is accounted for — holds at
    /// any quiescent instant (no messages parked in retry queues).
    pub fn balances(&self) -> bool {
        self.published() == self.delivered() + self.total_lost() + self.summarized()
    }

    /// Fraction of accounted events delivered individually rather than
    /// summarized: `delivered / (delivered + summarized)`. `1.0` when
    /// nothing has flowed — a calm pipeline is fully accurate.
    pub fn accuracy(&self) -> f64 {
        let d = self.delivered();
        let s = self.summarized();
        if d + s == 0 {
            return 1.0;
        }
        d as f64 / (d + s) as f64
    }

    /// All loss buckets, sorted by hop then cause.
    pub fn report(&self) -> Vec<LossRecord> {
        let mut out: Vec<LossRecord> = self
            .losses
            .lock()
            .iter()
            .map(|((hop, cause), &count)| LossRecord {
                hop: hop.clone(),
                cause: *cause,
                count,
            })
            .collect();
        out.sort_by(|a, b| (&a.hop, a.cause).cmp(&(&b.hop, b.cause)));
        out
    }

    /// One-line summary for experiment logs.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "published={} delivered={} lost={}",
            self.published(),
            self.delivered(),
            self.total_lost()
        );
        for r in self.report() {
            s.push_str(&format!(" [{}@{}={}]", r.cause, r.hop, r.count));
        }
        let sm = self.summarized();
        if sm > 0 {
            s.push_str(&format!(" summarized={sm}"));
        }
        let (dup, rec) = (self.duplicates(), self.recovered());
        if rec > 0 {
            s.push_str(&format!(" recovered={rec}"));
        }
        if dup > 0 {
            s.push_str(&format!(" duplicates={dup}"));
        }
        let acked = self.store_acked();
        if acked > 0 {
            s.push_str(&format!(" store_acked={acked}"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_buckets_by_hop_and_cause() {
        let l = DeliveryLedger::new();
        l.record_published();
        l.record_published();
        l.record_published();
        l.record_delivered();
        l.record_loss("ugni", LossCause::LinkLoss);
        l.record_loss("ugni", LossCause::LinkLoss);
        assert_eq!(l.published(), 3);
        assert_eq!(l.delivered(), 1);
        assert_eq!(l.total_lost(), 2);
        assert_eq!(l.lost_with_cause(LossCause::LinkLoss), 2);
        assert_eq!(l.lost_with_cause(LossCause::DaemonDown), 0);
        assert_eq!(l.lost_at("ugni"), 2);
        assert!(l.balances());
        let report = l.report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].count, 2);
        assert!(l.summary().contains("link-loss@ugni=2"));
    }

    #[test]
    fn duplicate_claims_are_counted_not_delivered() {
        let l = DeliveryLedger::new();
        let key: DeliveryKey = (Arc::from("nid0"), 7, 0, 1);
        assert!(l.try_claim_delivery(key.clone()));
        assert!(!l.try_claim_delivery(key));
        assert_eq!(l.duplicates(), 1);
        assert!(l.try_claim_delivery((Arc::from("nid0"), 7, 0, 2)));
        l.record_recovered();
        assert_eq!(l.recovered(), 1);
    }

    #[test]
    fn summarized_mass_balances_the_ledger() {
        let l = DeliveryLedger::new();
        l.record_published_n(10);
        l.record_delivered_n(6);
        assert!(!l.balances());
        l.record_summarized_n(3);
        l.record_loss("q", LossCause::Backpressure);
        assert!(l.balances());
        assert_eq!(l.summarized(), 3);
        assert!((l.accuracy() - 6.0 / 9.0).abs() < 1e-12);
        assert!(l.summary().contains("summarized=3"));
        assert!(l.summary().contains("backpressure@q=1"));
        let calm = DeliveryLedger::new();
        assert!((calm.accuracy() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn unbalanced_while_messages_are_in_flight() {
        let l = DeliveryLedger::new();
        l.record_published();
        assert!(!l.balances()); // parked in a queue somewhere
        l.record_loss("q", LossCause::QueueOverflow);
        assert!(l.balances());
    }
}
