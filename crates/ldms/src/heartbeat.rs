//! Heartbeat-based liveness detection for upstream route election.
//!
//! The paper's topology (Fig. 1) has exactly one route from the
//! compute nodes to the remote store: samplers → head-node L1 → L2.
//! A dead head node severs it. The failover layer lets a daemon hold
//! a *ranked list* of upstream routes; a route is declared dead only
//! after [`HeartbeatConfig::miss_threshold`] heartbeat intervals of
//! continuous unreachability (so a blip does not trigger an election),
//! and a recovered higher-ranked route is trusted again only after it
//! has stayed up for [`HeartbeatConfig::hold`] (hysteresis, so a
//! flapping primary does not bounce traffic back and forth).
//!
//! The election itself lives in [`crate::daemon`]; this module is just
//! the tunable policy.

use iosim_time::SimDuration;

/// Liveness-detection and failover policy for one daemon's upstream
/// route set.
#[derive(Debug, Clone, Copy)]
pub struct HeartbeatConfig {
    /// Virtual interval between heartbeats.
    pub interval: SimDuration,
    /// Consecutive missed heartbeats before a route is declared dead
    /// and a standby is elected.
    pub miss_threshold: u32,
    /// Hysteresis hold: a recovered higher-ranked route must stay up
    /// continuously this long before traffic fails back to it.
    pub hold: SimDuration,
}

impl HeartbeatConfig {
    /// Virtual time from a route going down to its death being
    /// detectable (`interval × miss_threshold`).
    pub fn detect_after(&self) -> SimDuration {
        self.interval * u64::from(self.miss_threshold.max(1))
    }

    /// Sets the heartbeat interval.
    pub fn with_interval(mut self, interval: SimDuration) -> Self {
        self.interval = interval;
        self
    }

    /// Sets the missed-beat threshold (clamped to at least 1).
    pub fn with_miss_threshold(mut self, n: u32) -> Self {
        self.miss_threshold = n.max(1);
        self
    }

    /// Sets the failback hold time.
    pub fn with_hold(mut self, hold: SimDuration) -> Self {
        self.hold = hold;
        self
    }
}

impl Default for HeartbeatConfig {
    /// 1 s beats, 3 misses to declare death, 10 s failback hold.
    fn default() -> Self {
        Self {
            interval: SimDuration::from_secs(1),
            miss_threshold: 3,
            hold: SimDuration::from_secs(10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_time_is_interval_times_misses() {
        let hb = HeartbeatConfig::default();
        assert_eq!(hb.detect_after(), SimDuration::from_secs(3));
        let fast = hb
            .with_interval(SimDuration::from_millis(100))
            .with_miss_threshold(5);
        assert_eq!(fast.detect_after(), SimDuration::from_millis(500));
    }

    #[test]
    fn miss_threshold_never_drops_below_one() {
        let hb = HeartbeatConfig::default().with_miss_threshold(0);
        assert_eq!(hb.miss_threshold, 1);
    }
}
