//! Durable write-ahead logging for retry queues.
//!
//! A [`crate::RetryQueue`] is volatile: a crash-stop fault
//! ([`crate::FaultSpec::Crash`]) destroys everything parked in it. The
//! [`WriteAheadLog`] gives a hop durability in the style of `simfs`'s
//! journal: every parked message is *appended* to the log, records
//! become durable when the log is *fsynced* (every
//! [`WalConfig::fsync_every`] appends), successful sends mark their
//! record *completed* — a volatile, in-memory mark — and every
//! [`WalConfig::checkpoint_every`] completions a *checkpoint* durably
//! truncates the completed prefix.
//!
//! The crash semantics follow from that write path exactly:
//!
//! * records appended since the last fsync are **lost** in a crash
//!   (the entries they covered are attributed `lost-crash`);
//! * completion marks made since the last checkpoint are **reverted**
//!   in a crash, so restart replays some *already delivered* messages
//!   — real duplicates, which the idempotent delivery path must (and
//!   does) suppress;
//! * everything else is replayed on restart.
//!
//! One invariant keeps the delivery ledger exact: when a queue entry
//! backed by a WAL record is *attributed as lost* (evicted, expired,
//! abandoned), its record is completed durably and synchronously
//! ([`WriteAheadLog::complete_durable`]) — an attributed-lost message
//! is never replayed, so no loss bucket ever needs to be decremented.

use crate::stream::StreamMessage;
use parking_lot::Mutex;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Write-ahead log configuration for one hop.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Maximum live (pending) records; an append against a full log
    /// fails and the entry stays volatile-only.
    pub capacity: usize,
    /// Fsync after every `n` appends (1 = every append is durable
    /// immediately; larger values trade a crash-loss window for fewer
    /// syncs).
    pub fsync_every: u32,
    /// Durably truncate the completed prefix after every `n`
    /// completions. Completions in between are volatile marks that a
    /// crash reverts (causing duplicate replay).
    pub checkpoint_every: u32,
}

impl WalConfig {
    /// Fsync-per-append durability: nothing parked is ever lost to a
    /// crash, at maximal (virtual) write cost.
    pub fn durable() -> Self {
        Self {
            capacity: 4096,
            fsync_every: 1,
            checkpoint_every: 64,
        }
    }

    /// Group-committed variant: appends become durable in batches of
    /// eight, so a crash can lose up to seven parked messages.
    pub fn group_commit() -> Self {
        Self {
            fsync_every: 8,
            ..Self::durable()
        }
    }

    /// Sets the record capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the fsync cadence (clamped to at least 1).
    pub fn with_fsync_every(mut self, n: u32) -> Self {
        self.fsync_every = n.max(1);
        self
    }

    /// Sets the checkpoint cadence (clamped to at least 1).
    pub fn with_checkpoint_every(mut self, n: u32) -> Self {
        self.checkpoint_every = n.max(1);
        self
    }
}

impl Default for WalConfig {
    fn default() -> Self {
        Self::durable()
    }
}

/// One replayable log record.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// Log sequence number (ties the record to its queue entry).
    pub lsn: u64,
    /// The parked message as appended.
    pub msg: StreamMessage,
    /// Send attempts the message had consumed when appended.
    pub attempts: u32,
}

#[derive(Debug)]
struct Slot {
    lsn: u64,
    msg: StreamMessage,
    attempts: u32,
    /// Covered by an fsync (or checkpoint rewrite); survives a crash.
    durable: bool,
    /// Volatile completion mark; reverted by a crash unless a
    /// checkpoint has truncated the slot away.
    completed: bool,
}

#[derive(Debug, Default)]
struct WalInner {
    slots: VecDeque<Slot>,
    next_lsn: u64,
    appends_since_fsync: u32,
    completions_since_checkpoint: u32,
}

/// Counter snapshot of one log's lifetime activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    /// Records appended.
    pub appended: u64,
    /// Appends rejected because the log was at capacity.
    pub rejected_full: u64,
    /// Fsync batches written.
    pub fsyncs: u64,
    /// Checkpoint truncations performed.
    pub checkpoints: u64,
    /// Records returned by restart replay.
    pub replayed: u64,
    /// Unsynced records destroyed by crashes.
    pub dropped_unsynced: u64,
    /// Volatile completion marks reverted by crashes (each becomes a
    /// duplicate send the delivery path suppresses).
    pub reverted_completions: u64,
    /// Most live (pending) records ever held at once — the log's
    /// high-water mark, for sizing `capacity` against worst-case
    /// static bounds.
    pub high_water: u64,
}

/// A bounded, crash-consistent write-ahead log for one hop's retry
/// queue. All instants are virtual; "durable" means "survives a
/// scripted [`crate::FaultSpec::Crash`]".
#[derive(Debug)]
pub struct WriteAheadLog {
    config: WalConfig,
    inner: Mutex<WalInner>,
    appended: AtomicU64,
    rejected_full: AtomicU64,
    fsyncs: AtomicU64,
    checkpoints: AtomicU64,
    replayed: AtomicU64,
    dropped_unsynced: AtomicU64,
    reverted_completions: AtomicU64,
    high_water: AtomicU64,
}

impl WriteAheadLog {
    /// Creates an empty log.
    pub fn new(config: WalConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(WalInner::default()),
            appended: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            dropped_unsynced: AtomicU64::new(0),
            reverted_completions: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &WalConfig {
        &self.config
    }

    /// Live (uncompleted or un-truncated) records.
    pub fn len(&self) -> usize {
        self.inner.lock().slots.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a record for a parked message. Returns its LSN, or
    /// `None` when the log is at capacity (the entry then rides the
    /// queue volatile-only and dies with a crash).
    pub fn append(&self, msg: &StreamMessage, attempts: u32) -> Option<u64> {
        let mut inner = self.inner.lock();
        if inner.slots.len() >= self.config.capacity {
            self.rejected_full.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        inner.slots.push_back(Slot {
            lsn,
            msg: msg.clone(),
            attempts,
            durable: false,
            completed: false,
        });
        self.appended.fetch_add(1, Ordering::Relaxed);
        self.high_water
            .fetch_max(inner.slots.len() as u64, Ordering::Relaxed);
        inner.appends_since_fsync += 1;
        if inner.appends_since_fsync >= self.config.fsync_every.max(1) {
            Self::fsync_locked(&mut inner, &self.fsyncs);
        }
        Some(lsn)
    }

    /// Flushes all pending appends to durable storage.
    pub fn fsync(&self) {
        Self::fsync_locked(&mut self.inner.lock(), &self.fsyncs);
    }

    fn fsync_locked(inner: &mut WalInner, fsyncs: &AtomicU64) {
        if inner.appends_since_fsync > 0 {
            fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        inner.appends_since_fsync = 0;
        for s in inner.slots.iter_mut() {
            s.durable = true;
        }
    }

    /// Marks a record completed (its message was handed to the link
    /// successfully). The mark is *volatile* until the next
    /// checkpoint: a crash in between reverts it and the message is
    /// replayed — a duplicate the idempotent delivery path suppresses.
    pub fn complete(&self, lsn: u64) {
        let mut inner = self.inner.lock();
        if let Some(s) = inner.slots.iter_mut().find(|s| s.lsn == lsn) {
            if !s.completed {
                s.completed = true;
                inner.completions_since_checkpoint += 1;
                if inner.completions_since_checkpoint >= self.config.checkpoint_every.max(1) {
                    Self::checkpoint_locked(&mut inner, &self.checkpoints, &self.fsyncs);
                }
            }
        }
    }

    /// Durably and synchronously removes a record: used when its queue
    /// entry is *attributed as lost* (evicted, expired, abandoned), so
    /// an accounted-for message can never be replayed and double
    /// counted.
    pub fn complete_durable(&self, lsn: u64) {
        let mut inner = self.inner.lock();
        inner.slots.retain(|s| s.lsn != lsn);
    }

    /// Durably truncates the completed prefix and fsyncs the rest.
    pub fn checkpoint(&self) {
        Self::checkpoint_locked(&mut self.inner.lock(), &self.checkpoints, &self.fsyncs);
    }

    fn checkpoint_locked(inner: &mut WalInner, checkpoints: &AtomicU64, fsyncs: &AtomicU64) {
        inner.slots.retain(|s| !s.completed);
        inner.completions_since_checkpoint = 0;
        checkpoints.fetch_add(1, Ordering::Relaxed);
        // A checkpoint rewrites the log, making the survivors durable.
        Self::fsync_locked(inner, fsyncs);
    }

    /// Applies crash semantics: unsynced records are destroyed and
    /// volatile completion marks are reverted. Returns the LSNs that
    /// survived (the caller attributes queue entries whose LSN did
    /// *not* survive — or that never had one — as `lost-crash`).
    pub fn crash(&self) -> HashSet<u64> {
        let mut inner = self.inner.lock();
        let before = inner.slots.len();
        inner.slots.retain(|s| s.durable);
        let dropped = (before - inner.slots.len()) as u64;
        self.dropped_unsynced.fetch_add(dropped, Ordering::Relaxed);
        let mut reverted = 0;
        for s in inner.slots.iter_mut() {
            if s.completed {
                s.completed = false;
                reverted += 1;
            }
        }
        self.reverted_completions
            .fetch_add(reverted, Ordering::Relaxed);
        inner.appends_since_fsync = 0;
        inner.completions_since_checkpoint = 0;
        inner.slots.iter().map(|s| s.lsn).collect()
    }

    /// Restart recovery: returns every durable, uncompleted record for
    /// the daemon to re-park. Records stay in the log (keyed by their
    /// LSN) until completed, so a second crash replays them again.
    pub fn replay(&self) -> Vec<WalRecord> {
        let inner = self.inner.lock();
        let records: Vec<WalRecord> = inner
            .slots
            .iter()
            .filter(|s| !s.completed)
            .map(|s| WalRecord {
                lsn: s.lsn,
                msg: s.msg.clone(),
                attempts: s.attempts,
            })
            .collect();
        self.replayed
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        records
    }

    /// Lifetime counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appended: self.appended.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            replayed: self.replayed.load(Ordering::Relaxed),
            dropped_unsynced: self.dropped_unsynced.load(Ordering::Relaxed),
            reverted_completions: self.reverted_completions.load(Ordering::Relaxed),
            high_water: self.high_water.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::MsgFormat;
    use iosim_time::Epoch;

    fn msg(data: &str) -> StreamMessage {
        StreamMessage::new(
            "t",
            MsgFormat::Json,
            data.to_string(),
            "nid0",
            Epoch::from_secs(1),
        )
    }

    #[test]
    fn durable_appends_survive_crash_and_replay() {
        let wal = WriteAheadLog::new(WalConfig::durable());
        let a = wal.append(&msg("a"), 1).unwrap();
        let b = wal.append(&msg("b"), 2).unwrap();
        let surviving = wal.crash();
        assert!(surviving.contains(&a) && surviving.contains(&b));
        let replayed = wal.replay();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[1].attempts, 2);
        assert_eq!(wal.stats().dropped_unsynced, 0);
    }

    #[test]
    fn unsynced_appends_die_in_crash() {
        let wal = WriteAheadLog::new(WalConfig::durable().with_fsync_every(4));
        let a = wal.append(&msg("a"), 1).unwrap();
        let _b = wal.append(&msg("b"), 1).unwrap();
        let surviving = wal.crash();
        assert!(surviving.is_empty(), "nothing fsynced yet: {surviving:?}");
        assert_eq!(wal.stats().dropped_unsynced, 2);
        // The fourth append would have triggered the group fsync.
        let wal = WriteAheadLog::new(WalConfig::durable().with_fsync_every(2));
        wal.append(&msg("a"), 1).unwrap();
        wal.append(&msg("b"), 1).unwrap();
        assert_eq!(wal.crash().len(), 2);
        let _ = a;
    }

    #[test]
    fn completion_marks_are_volatile_until_checkpoint() {
        let wal = WriteAheadLog::new(WalConfig::durable().with_checkpoint_every(10));
        let a = wal.append(&msg("a"), 1).unwrap();
        wal.complete(a);
        assert!(wal.replay().is_empty(), "completed records do not replay");
        wal.crash();
        let replayed = wal.replay();
        assert_eq!(replayed.len(), 1, "crash reverted the volatile mark");
        assert_eq!(replayed[0].lsn, a);
        assert_eq!(wal.stats().reverted_completions, 1);
    }

    #[test]
    fn checkpoint_truncates_completed_prefix_durably() {
        let wal = WriteAheadLog::new(WalConfig::durable().with_checkpoint_every(2));
        let a = wal.append(&msg("a"), 1).unwrap();
        let b = wal.append(&msg("b"), 1).unwrap();
        let _c = wal.append(&msg("c"), 1).unwrap();
        wal.complete(a);
        wal.complete(b); // second completion triggers the checkpoint
        assert_eq!(wal.len(), 1);
        wal.crash();
        assert_eq!(wal.replay().len(), 1, "a and b are durably gone");
        assert!(wal.stats().checkpoints >= 1);
    }

    #[test]
    fn complete_durable_is_crash_proof() {
        let wal = WriteAheadLog::new(WalConfig::durable().with_checkpoint_every(100));
        let a = wal.append(&msg("a"), 1).unwrap();
        wal.complete_durable(a);
        wal.crash();
        assert!(wal.replay().is_empty());
    }

    #[test]
    fn capacity_bounds_live_records() {
        let wal = WriteAheadLog::new(WalConfig::durable().with_capacity(2));
        assert!(wal.append(&msg("a"), 1).is_some());
        assert!(wal.append(&msg("b"), 1).is_some());
        assert!(wal.append(&msg("c"), 1).is_none(), "log full");
        assert_eq!(wal.stats().rejected_full, 1);
        wal.complete_durable(0);
        assert!(wal.append(&msg("c"), 1).is_some(), "space reclaimed");
        assert_eq!(wal.stats().high_water, 2, "peak live records, not total");
    }
}
