//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary accepts `--quick` (CI-scale workloads) and `--out DIR`
//! (write CSV exports next to the textual report). Paper-scale runs are
//! the default; they simulate hundreds of ranks and millions of events
//! and can take minutes of wall-clock time.

#![forbid(unsafe_code)]

use std::path::PathBuf;

/// Parsed command-line options shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Run CI-scale workloads instead of paper-scale.
    pub quick: bool,
    /// Output directory for CSV exports (created if missing).
    pub out: Option<PathBuf>,
}

impl HarnessOpts {
    /// Parses `std::env::args`. Unknown flags abort with usage help.
    pub fn from_args() -> Self {
        let mut quick = false;
        let mut out = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--out" => {
                    out = Some(PathBuf::from(
                        args.next().expect("--out requires a directory"),
                    ));
                }
                "--help" | "-h" => {
                    eprintln!("usage: [--quick] [--out DIR]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; usage: [--quick] [--out DIR]");
                    std::process::exit(2);
                }
            }
        }
        Self { quick, out }
    }

    /// The workload scale implied by the flags.
    pub fn scale(&self) -> iosim_apps::table2::Scale {
        if self.quick {
            iosim_apps::table2::Scale::Quick
        } else {
            iosim_apps::table2::Scale::Paper
        }
    }

    /// Writes an artifact file if `--out` was given.
    pub fn write_artifact(&self, name: &str, contents: &str) {
        if let Some(dir) = &self.out {
            std::fs::create_dir_all(dir).expect("create output dir");
            let path = dir.join(name);
            std::fs::write(&path, contents).expect("write artifact");
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Paper reference values for side-by-side comparison in reports.
/// CSV renderings of the Figure 5–9 artifacts. One formatter per
/// figure, shared by the `fig5`..`fig9` binaries and the golden-file
/// tests — a figure CSV's byte layout is part of the published
/// interface, so the tests pin it against checked-in goldens.
pub mod figcsv {
    use hpcws_sim::dashboard;
    use hpcws_sim::figures::{NodeOps, OpOccurrence, RankDurations, TimePoint, Timeline};

    /// Figure 5: mean occurrences of each I/O operation, with 95% CI.
    pub fn fig5(occ: &[OpOccurrence]) -> String {
        let mut csv = String::from("op,mean,ci95\n");
        for o in occ {
            csv.push_str(&format!("{},{:.3},{:.3}\n", o.op, o.mean, o.ci95));
        }
        csv
    }

    /// Figure 6: open/close operations per compute node per job.
    pub fn fig6(ops: &[NodeOps]) -> String {
        let mut csv = String::from("node,job,op,count\n");
        for o in ops {
            csv.push_str(&format!("{},{},{},{}\n", o.node, o.job, o.op, o.count));
        }
        csv
    }

    /// Figure 7: mean read/write durations per rank per job.
    pub fn fig7(rd: &[RankDurations]) -> String {
        let mut csv = String::from("job,rank,op,mean_dur_s,count\n");
        for r in rd {
            csv.push_str(&format!(
                "{},{},{},{:.6},{}\n",
                r.job, r.rank, r.op, r.mean_dur, r.count
            ));
        }
        csv
    }

    /// Figure 8: operation durations over execution time.
    pub fn fig8(pts: &[TimePoint]) -> String {
        let mut csv = String::from("t_s,dur_s,op,rank\n");
        for p in pts {
            csv.push_str(&format!("{:.3},{:.6},{},{}\n", p.t, p.dur, p.op, p.rank));
        }
        csv
    }

    /// Figure 9: the Grafana-style timeline (delegates to the
    /// dashboard's canonical CSV form).
    pub fn fig9(tl: &Timeline) -> String {
        dashboard::timeline_to_csv(tl)
    }
}

pub mod paper {
    /// (config label, fs, avg messages, rate, darshan s, dC s, overhead %)
    pub type Row = (&'static str, &'static str, f64, f64, f64, f64, f64);

    /// Table IIa as printed in the paper.
    pub const TABLE2A: [Row; 4] = [
        ("collective", "NFS", 50390.0, 37.0, 1376.67, 1355.35, -1.55),
        ("independent", "NFS", 6397.0, 7.0, 880.46, 858.68, -2.47),
        ("collective", "Lustre", 25770.0, 95.0, 249.97, 270.98, 8.41),
        (
            "independent",
            "Lustre",
            15676.0,
            38.0,
            428.18,
            414.35,
            -3.23,
        ),
    ];

    /// Table IIb as printed in the paper.
    pub const TABLE2B: [Row; 4] = [
        (
            "5M particles/rank",
            "NFS",
            1663.0,
            2.0,
            882.46,
            775.24,
            -12.15,
        ),
        (
            "10M particles/rank",
            "NFS",
            1774.0,
            1.0,
            1353.87,
            1365.24,
            0.84,
        ),
        (
            "5M particles/rank",
            "Lustre",
            1995.0,
            3.0,
            417.14,
            467.24,
            12.01,
        ),
        (
            "10M particles/rank",
            "Lustre",
            1711.0,
            2.0,
            1616.87,
            1027.44,
            -36.45,
        ),
    ];

    /// Table IIc as printed in the paper.
    pub const TABLE2C: [Row; 2] = [
        (
            "Pfam-A.seed",
            "NFS",
            3_117_342.0,
            1483.0,
            749.88,
            2826.01,
            276.86,
        ),
        (
            "Pfam-A.seed",
            "Lustre",
            4_461_738.0,
            2396.0,
            135.40,
            1863.98,
            1276.67,
        ),
    ];

    /// The paper's no-format ablation overhead.
    pub const NOFORMAT_OVERHEAD_PCT: f64 = 0.37;

    /// Renders a reference block for a report.
    pub fn reference_block(rows: &[Row]) -> String {
        let mut out =
            String::from("paper reference (config, fs, msgs, rate, darshan_s, dc_s, overhead%):\n");
        for (label, fs, msgs, rate, d, dc, ov) in rows {
            out.push_str(&format!(
                "  {label:<22} {fs:<7} {msgs:>10.0} {rate:>7.1} {d:>9.2} {dc:>9.2} {ov:>+8.2}%\n"
            ));
        }
        out
    }
}

pub mod livehub {
    //! Shared live-diagnosis run: one MPI-IO job with an injected
    //! congestion storm, online detection riding the ingest stream
    //! *streaming* (windows close in-run behind the watermark
    //! frontier), and the diagnosis hub collecting health, fault,
    //! overload, snapshot, and detection events. Used by `iowatch`
    //! (the dashboard) and `pipestat` (the JSON export) so both tell
    //! the same story.

    use darshan_ldms_connector::TelemetryConfig;
    use iosim_apps::experiment::{run_job, Instrumentation, RunResult, RunSpec};
    use iosim_apps::figdata::estimate_write_phase_s;
    use iosim_apps::platform::FsChoice;
    use iosim_apps::workloads::MpiIoTest;
    use iosim_fs::CongestionWindow;
    use iosim_telemetry::HubConfig;
    use iosim_time::SimDuration;

    /// The hub cadence used by the live binaries (virtual seconds).
    pub const SNAPSHOT_EVERY_S: u64 = 5;

    /// The anomalous workload: a CI-scale MPI-IO job whose late write
    /// phase runs under a 1.5x congestion storm (the paper's job-2
    /// signature), detection windows sized to one write burst.
    pub fn workload(quick: bool) -> MpiIoTest {
        let mut a = MpiIoTest::tiny(false);
        a.iterations = 10;
        a.nodes = if quick { 2 } else { 4 };
        a.ranks_per_node = 4;
        a.block = 4 * 1024 * 1024;
        a
    }

    /// The spec for [`workload`]: store + hub-enabled telemetry +
    /// streaming detection + a congestion storm over the late writes.
    pub fn spec(app: &MpiIoTest, seed: u64) -> RunSpec {
        let writes_end = estimate_write_phase_s(app);
        let detection = hpcws_sim::DetectionConfig::default()
            .with_window_s((writes_end / 10.0).max(0.05))
            .with_outlier_factor(1.3);
        let base = RunSpec::calm(FsChoice::Lustre, Instrumentation::connector_default())
            .with_store(true)
            .with_telemetry(TelemetryConfig::trace_all().with_hub(HubConfig {
                snapshot_every_s: SNAPSHOT_EVERY_S,
                ..HubConfig::default()
            }))
            .with_detection(detection)
            .with_detection_alert_budget(writes_end * 2.0);
        let mut spec = base;
        spec.seed = seed;
        spec.job_id = 600 + seed;
        let t0 = spec.epoch_base;
        let storm_start = t0 + SimDuration::from_secs_f64(writes_end * 0.55);
        let storm_end = t0 + SimDuration::from_secs_f64(writes_end * 8.0 + 120.0);
        spec.with_congestion(CongestionWindow::storm(storm_start, storm_end, 1.5))
    }

    /// Runs the anomalous live-diagnosis job end to end.
    pub fn run(quick: bool, seed: u64) -> RunResult {
        let app = workload(quick);
        run_job(&app, &spec(&app, seed))
    }

    /// The hub's downsampled timeline as a JSON array (the
    /// `hub_timeline` family).
    pub fn timeline_json(hub: &iosim_telemetry::DiagHub) -> String {
        let rows = hub.timeline();
        let mut out = String::from("[");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"level\": {}, \"width_s\": {}, \"bucket_s\": {}, \"series\": \"{}\", \
                 \"last\": {:.6}, \"max\": {:.6}}}",
                if i == 0 { "" } else { ", " },
                r.level,
                r.width_s,
                r.bucket_s,
                r.series,
                r.last,
                r.max
            ));
        }
        out.push(']');
        out
    }

    /// The live detection stream as a JSON array (the
    /// `detection_live_stream` family): each finding with its virtual
    /// emit instant and whether it surfaced in-run.
    pub fn live_stream_json(live: &[iosim_apps::detect::LiveDetection]) -> String {
        let mut out = String::from("[");
        for (i, l) in live.iter().enumerate() {
            out.push_str(&format!(
                "{}{{\"kind\": \"{}\", \"severity\": \"{}\", \"job\": {}, \"rank\": {}, \
                 \"op\": \"{}\", \"onset_s\": {:.3}, \"detected_s\": {:.3}, \
                 \"emitted_s\": {:.3}, \"in_run\": {}}}",
                if i == 0 { "" } else { ", " },
                l.event.kind.as_str(),
                l.event.severity.as_str(),
                l.event.job_id,
                l.event
                    .rank
                    .map_or_else(|| "null".to_string(), |r| r.to_string()),
                l.event.op,
                l.event.onset,
                l.event.detected_at,
                l.emitted_s,
                l.in_run
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn livehub_run_streams_detections_through_the_hub() {
        let r = livehub::run(true, 1);
        assert!(!r.detections.is_empty(), "the storm must be detected");
        // The live stream carries exactly the oracle's findings.
        assert_eq!(r.live_detections.len(), r.detections.len());
        for d in &r.detections {
            assert!(r.live_detections.iter().any(|l| &l.event == d));
        }
        assert!(
            r.live_detections.iter().any(|l| l.in_run),
            "the storm should surface while ingest is still flowing"
        );
        let p = r.pipeline.as_ref().expect("connector run");
        let hub = p.telemetry().expect("telemetry on").diag().expect("hub on");
        assert!(hub.published() > 0, "hub saw events");
        assert!(
            !hub.timeline().is_empty(),
            "snapshot cadence filled the ring"
        );
        assert!(
            hub.events()
                .iter()
                .any(|e| matches!(e.kind, iosim_telemetry::HubEventKind::Detection(_))),
            "detections published to the hub"
        );
    }

    #[test]
    fn reference_block_renders_all_rows() {
        let block = paper::reference_block(&paper::TABLE2A);
        assert_eq!(block.lines().count(), 5);
        assert!(block.contains("collective"));
        assert!(block.contains("+8.41%"));
    }
}
