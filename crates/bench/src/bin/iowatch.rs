//! `iowatch` — live diagnosis dashboard over the hub's event stream.
//!
//! Runs the shared anomalous MPI-IO job (late-write congestion storm)
//! with the diagnosis hub enabled and renders what an operator watching
//! the run would have seen, frame by frame in virtual time: metric
//! snapshots, per-daemon health transitions, overload rung changes,
//! fault events, and — the headline — the online detector's findings
//! at the virtual instant each one surfaced, while ingest was still
//! flowing.
//!
//! Modes:
//!
//! * default — threaded delivery, dashboard frames plus the health /
//!   alert / live-detection tables;
//! * `--snapshot` — CI mode: deferred (serial) delivery so the hub's
//!   event stream is byte-deterministic; the run executes twice and
//!   the two event logs must be identical, the live detection set must
//!   equal the settle-replay oracle's, and at least one finding must
//!   have surfaced in-run;
//! * `--parity` — the differential gate: for seeds 1/7/42, every
//!   labeled corpus scenario is streamed through the live tap under a
//!   seeded cross-rank interleaving and the emitted set must exactly
//!   equal a straight settle-replay; the anomalous pipeline run is
//!   also re-run with the hub off and the two oracle sets compared.
//!
//! `--out DIR` exports `BENCH_iowatch_timeline.csv` (the
//! multi-resolution ring), `BENCH_iowatch_events.csv` (the full event
//! log), and `BENCH_iowatch.json` (`hub_timeline` +
//! `detection_live_stream` families). Exits non-zero when any gate
//! fails.

use darshan_ldms_connector::DeliveryMode;
use hpcws_sim::online::{OnlineDetector, OnlineEvent};
use iosim_apps::detect::{event_cmp, LiveDetectorTap};
use iosim_apps::experiment::RunResult;
use iosim_telemetry::{DiagHub, HubEvent, HubEventKind};
use iosim_time::Epoch;
use iosim_util::table::TextTable;
use repro_bench::livehub;
use repro_suite::scenario;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

struct Opts {
    quick: bool,
    snapshot: bool,
    parity: bool,
    out: Option<PathBuf>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        quick: false,
        snapshot: false,
        parity: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--snapshot" => opts.snapshot = true,
            "--parity" => opts.parity = true,
            "--out" => {
                opts.out = Some(PathBuf::from(
                    args.next().expect("--out requires a directory"),
                ));
            }
            "--help" | "-h" => {
                eprintln!("usage: iowatch [--quick] [--snapshot] [--parity] [--out DIR]");
                std::process::exit(0);
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: iowatch [--quick] [--snapshot] [--parity] [--out DIR]"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Renders the operator view: one dashboard frame per cadence interval
/// of virtual time, counting what the hub saw in that window.
fn render_frames(events: &[HubEvent], frame_s: u64) -> TextTable {
    let mut frames: BTreeMap<u64, [u64; 5]> = BTreeMap::new();
    for e in events {
        let bucket = (e.vtime.as_secs_f64() / frame_s as f64).floor() as u64 * frame_s;
        let slot = match e.kind {
            HubEventKind::MetricSnapshot { .. } => 0,
            HubEventKind::Health { .. } => 1,
            HubEventKind::Overload { .. } => 2,
            HubEventKind::Fault { .. } => 3,
            HubEventKind::Detection(_) => 4,
        };
        frames.entry(bucket).or_default()[slot] += 1;
    }
    let mut t = TextTable::new(vec![
        "frame (vtime)",
        "snapshots",
        "health",
        "overload",
        "faults",
        "detections",
    ]);
    for (bucket, counts) in &frames {
        t.row(vec![
            format!("[{bucket}s, {}s)", bucket + frame_s),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            counts[3].to_string(),
            counts[4].to_string(),
        ]);
    }
    t
}

/// The post-run operator tables: health transitions, routed alerts,
/// and the live detection stream with emit instants.
fn render_detail(hub: &DiagHub, r: &RunResult) {
    let mut health = TextTable::new(vec!["vtime (s)", "daemon", "transition", "reason"]);
    let mut faults = TextTable::new(vec!["vtime (s)", "daemon", "fault", "detail"]);
    for e in hub.events() {
        match &e.kind {
            HubEventKind::Health { from, to, reason } => {
                health.row(vec![
                    format!("{:.3}", e.vtime.as_secs_f64()),
                    e.source.clone(),
                    format!("{} -> {}", from.as_str(), to.as_str()),
                    reason.clone(),
                ]);
            }
            HubEventKind::Fault { kind, detail } => {
                faults.row(vec![
                    format!("{:.3}", e.vtime.as_secs_f64()),
                    e.source.clone(),
                    kind.as_str().to_string(),
                    detail.clone(),
                ]);
            }
            _ => {}
        }
    }
    println!("\n-- health transitions --\n{}", health.render());
    println!("-- fault events --\n{}", faults.render());

    let (deduped, suppressed) = hub.alert_stats();
    let mut alerts = TextTable::new(vec!["vtime (s)", "severity", "source", "key", "message"]);
    for a in hub.alerts() {
        alerts.row(vec![
            format!("{:.3}", a.vtime.as_secs_f64()),
            a.severity.as_str().to_string(),
            a.source.clone(),
            a.key.clone(),
            a.message.clone(),
        ]);
    }
    println!(
        "-- routed alerts ({deduped} deduped, {suppressed} flap-suppressed) --\n{}",
        alerts.render()
    );

    let mut live = TextTable::new(vec![
        "emitted (s)",
        "in-run",
        "kind",
        "severity",
        "job",
        "rank",
        "op",
        "onset (s)",
        "lag (s)",
    ]);
    for l in &r.live_detections {
        live.row(vec![
            format!("{:.3}", l.emitted_s),
            if l.in_run { "yes" } else { "settle" }.to_string(),
            l.event.kind.as_str().to_string(),
            l.event.severity.as_str().to_string(),
            l.event.job_id.to_string(),
            l.event
                .rank
                .map_or_else(|| "-".to_string(), |x| x.to_string()),
            l.event.op.clone(),
            format!("{:.3}", l.event.onset),
            format!("{:.3}", l.emitted_s - l.event.onset),
        ]);
    }
    println!("-- live detection stream --\n{}", live.render());
}

/// Gates shared by every mode: the hub saw traffic, the detector found
/// the storm, the live stream is exactly the oracle set, and in-run
/// emissions precede the settle horizon.
fn gate_run(r: &RunResult, hub: &DiagHub, horizon_s: f64, failures: &mut Vec<String>) {
    if hub.published() == 0 {
        failures.push("hub published no events".into());
    }
    if hub.timeline().is_empty() {
        failures.push("snapshot cadence left the timeline ring empty".into());
    }
    if r.detections.is_empty() {
        failures.push("the injected storm was not detected".into());
    }
    if r.live_detections.len() != r.detections.len()
        || r.detections
            .iter()
            .any(|d| !r.live_detections.iter().any(|l| &l.event == d))
    {
        failures.push(format!(
            "live stream ({}) != settle-replay oracle ({})",
            r.live_detections.len(),
            r.detections.len()
        ));
    }
    for l in &r.live_detections {
        if l.in_run && l.emitted_s >= horizon_s {
            failures.push("an in-run emission did not precede the settle horizon".into());
        }
    }
}

/// The settle horizon `run_job` used: job end plus the one-minute
/// drain window.
fn horizon_s(spec: &iosim_apps::experiment::RunSpec, r: &RunResult) -> f64 {
    spec.epoch_base.as_secs_f64() + r.runtime_s + 60.0
}

/// A tiny deterministic PRNG (xorshift64*) so the parity interleavings
/// are seeded without pulling in a dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Streams one scenario's events through the live tap under a seeded
/// cross-rank interleaving (per-rank order preserved) and compares the
/// emitted set against a straight settle-replay of the same events.
fn parity_one(events: &[OnlineEvent], seed: u64) -> Result<(usize, usize), String> {
    // Straight replay: the oracle.
    let mut sorted: Vec<OnlineEvent> = events.to_vec();
    sorted.sort_by(event_cmp);
    let mut oracle = OnlineDetector::new(hpcws_sim::DetectionConfig::default());
    for e in &sorted {
        oracle.observe(e);
    }
    let want = oracle.finish();

    // Live: seeded interleaving across per-rank queues.
    let mut queues: BTreeMap<u64, std::collections::VecDeque<OnlineEvent>> = BTreeMap::new();
    for e in events {
        queues.entry(e.rank).or_default().push_back(e.clone());
    }
    let ranks = queues.len() as u64;
    let tap = LiveDetectorTap::new(hpcws_sim::DetectionConfig::default(), ranks, None);
    let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1));
    let mut clock = 0u64;
    while !queues.is_empty() {
        let keys: Vec<u64> = queues.keys().copied().collect();
        let pick = keys[(rng.next() % keys.len() as u64) as usize];
        let q = queues.get_mut(&pick).expect("picked key exists");
        let e = q.pop_front().expect("queues hold only nonempty ranks");
        if q.is_empty() {
            queues.remove(&pick);
        }
        clock += 1;
        tap.offer(e, Epoch::from_nanos(clock));
    }
    let out = tap.finalize(Epoch::from_secs(1_000_000));
    let live: Vec<_> = out.live.iter().map(|l| &l.event).collect();
    if out.detections != want {
        return Err(format!(
            "oracle drift: live-tap replay produced {} detections, straight replay {}",
            out.detections.len(),
            want.len()
        ));
    }
    if live.len() != want.len() || want.iter().any(|d| !live.contains(&d)) {
        return Err(format!(
            "live emissions ({}) != settle-replay ({})",
            live.len(),
            want.len()
        ));
    }
    let in_run = out.live.iter().filter(|l| l.in_run).count();
    Ok((want.len(), in_run))
}

fn main() {
    let opts = parse_args();
    let mut failures: Vec<String> = Vec::new();

    if opts.parity {
        println!("iowatch --parity: hub-live vs settle-replay differential gate");
        let mut table = TextTable::new(vec![
            "seed",
            "scenario",
            "detections",
            "emitted in-run",
            "gate",
        ]);
        for seed in [1u64, 7, 42] {
            for sc in scenario::corpus(seed) {
                let label = sc.class.as_str().to_string();
                match parity_one(&sc.events, seed) {
                    Ok((n, in_run)) => {
                        table.row(vec![
                            seed.to_string(),
                            label,
                            n.to_string(),
                            in_run.to_string(),
                            "pass".to_string(),
                        ]);
                    }
                    Err(e) => {
                        failures.push(format!("seed {seed} {label}: {e}"));
                        table.row(vec![
                            seed.to_string(),
                            label,
                            "-".to_string(),
                            "-".to_string(),
                            "FAIL".to_string(),
                        ]);
                    }
                }
            }
            // Whole-pipeline parity: the same anomalous run with the
            // hub on (streaming detection) and off (settle-replay)
            // must produce identical oracle detection sets.
            let live_run = livehub::run(true, seed);
            let app = livehub::workload(true);
            let mut settle_spec = livehub::spec(&app, seed);
            settle_spec.telemetry = None;
            settle_spec.detection_alert_budget_s = None;
            let settle_run = iosim_apps::experiment::run_job(&app, &settle_spec);
            if live_run.detections != settle_run.detections {
                failures.push(format!(
                    "seed {seed}: pipeline live run detections ({}) != hub-off run ({})",
                    live_run.detections.len(),
                    settle_run.detections.len()
                ));
            }
            let hub = live_run
                .pipeline
                .as_ref()
                .and_then(|p| p.telemetry())
                .and_then(|t| t.diag())
                .cloned()
                .expect("hub enabled");
            let live_spec = livehub::spec(&app, seed);
            gate_run(
                &live_run,
                &hub,
                horizon_s(&live_spec, &live_run),
                &mut failures,
            );
            table.row(vec![
                seed.to_string(),
                "pipeline (storm)".to_string(),
                live_run.detections.len().to_string(),
                live_run
                    .live_detections
                    .iter()
                    .filter(|l| l.in_run)
                    .count()
                    .to_string(),
                if failures.is_empty() { "pass" } else { "FAIL" }.to_string(),
            ]);
        }
        println!("{}", table.render());
        finish(failures);
        return;
    }

    println!(
        "iowatch: live diagnosis dashboard ({} delivery)",
        if opts.snapshot {
            "deferred/deterministic"
        } else {
            "threaded"
        }
    );
    let app = livehub::workload(opts.quick || opts.snapshot);
    let mut spec = livehub::spec(&app, 1);
    if opts.snapshot {
        spec = spec.with_delivery(DeliveryMode::Deferred);
    }
    let r = iosim_apps::experiment::run_job(&app, &spec);
    let hub = r
        .pipeline
        .as_ref()
        .and_then(|p| p.telemetry())
        .and_then(|t| t.diag())
        .cloned()
        .expect("hub enabled");

    if opts.snapshot {
        // Determinism gate: the identical spec must reproduce the hub
        // event log byte for byte under serial delivery.
        let r2 = iosim_apps::experiment::run_job(&app, &spec);
        let hub2 = r2
            .pipeline
            .as_ref()
            .and_then(|p| p.telemetry())
            .and_then(|t| t.diag())
            .cloned()
            .expect("hub enabled");
        if hub.events_csv() != hub2.events_csv() {
            failures.push("hub event log is not deterministic under deferred delivery".into());
        }
        if r.detections != r2.detections {
            failures.push("detection set is not deterministic under deferred delivery".into());
        }
    }

    let events = hub.events();
    let frame_s = 4 * livehub::SNAPSHOT_EVERY_S;
    println!(
        "\n{} hub events from {} sources, {} dropped from the retained log",
        events.len(),
        events
            .iter()
            .map(|e| e.source.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        hub.log_dropped()
    );
    println!("\n-- dashboard frames ({frame_s}s of virtual time each) --");
    println!("{}", render_frames(&events, frame_s).render());
    render_detail(&hub, &r);
    gate_run(&r, &hub, horizon_s(&spec, &r), &mut failures);

    if let Some(dir) = &opts.out {
        std::fs::create_dir_all(dir).expect("create output dir");
        let mut json = String::from("{\n  \"benchmark\": \"iowatch\",\n");
        let _ = writeln!(json, "  \"hub_events\": {},", events.len());
        let _ = writeln!(
            json,
            "  \"hub_timeline\": {},",
            livehub::timeline_json(&hub)
        );
        let _ = writeln!(
            json,
            "  \"detection_live_stream\": {}",
            livehub::live_stream_json(&r.live_detections)
        );
        json.push_str("}\n");
        for (name, contents) in [
            ("BENCH_iowatch_timeline.csv", hub.timeline_csv()),
            ("BENCH_iowatch_events.csv", hub.events_csv()),
            ("BENCH_iowatch.json", json),
        ] {
            std::fs::write(dir.join(name), contents).expect("write artifact");
            eprintln!("wrote {}", dir.join(name).display());
        }
    }
    finish(failures);
}

fn finish(failures: Vec<String>) {
    if !failures.is_empty() {
        eprintln!("\nFAILURES:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("\niowatch: all gates passed");
}
