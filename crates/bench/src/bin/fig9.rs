//! Regenerates Figure 9: the Grafana-style timeline of job_id 2 —
//! read/write operation counts and bytes aggregated across ranks,
//! plotted against the absolute timestamps the integration collects.

use hpcws_sim::{dashboard, figures};
use repro_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("running 5 MPI-IO-TEST jobs (Lustre, independent) with congestion in job 2...");
    let runs = iosim_apps::figdata::mpi_io_figure_runs(5, opts.quick);
    let df = runs.job_frame(2);
    let tl = figures::timeline(&df, 60);
    let panel = dashboard::render_timeline(
        "Figure 9 — Grafana timeline of job_id 2: ops and bytes per bin, all ranks",
        &tl,
    );
    println!("{panel}");
    println!(
        "paper observation: write phases dominate the run with multi-GB bursts;\n\
         reads cluster at the end with a smaller byte volume."
    );
    opts.write_artifact("fig9.csv", &repro_bench::figcsv::fig9(&tl));
}
