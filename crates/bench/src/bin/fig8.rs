//! Regenerates Figure 8: the distribution of read/write operations over
//! the execution time of the anomalous job (job_id 2), revealing the
//! application's I/O pattern (ten write phases, then reads) and the
//! late-run slowdown.

use hpcws_sim::{dashboard, figures};
use repro_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("running 5 MPI-IO-TEST jobs (Lustre, independent) with congestion in job 2...");
    let runs = iosim_apps::figdata::mpi_io_figure_runs(5, opts.quick);
    let df = runs.job_frame(2); // the anomalous job
    let pts = figures::time_distribution(&df);
    let panel = dashboard::render_time_distribution(
        "Figure 8 — operation durations over execution time, job_id 2 (w=write, r=read)",
        &pts,
    );
    println!("{panel}");
    println!(
        "paper observation: ten write phases then reads at the end, with the slowest\n\
         writes after ~250 s — look for 'w' glyphs rising to the right and a late 'r' cluster."
    );
    opts.write_artifact("fig8.csv", &repro_bench::figcsv::fig8(&pts));
}
