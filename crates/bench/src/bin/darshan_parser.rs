//! `darshan-parser` work-alike: runs an instrumented job, writes the
//! binary Darshan log to a real file, re-reads it, and prints the
//! post-run summary — the stock-Darshan workflow the connector
//! complements (Section IV.A: darshan-util "is intended for analyzing
//! log files produced by darshan-runtime").
//!
//! ```text
//! cargo run -p repro-bench --bin darshan_parser [-- --quick] [-- --out DIR]
//! ```

use iosim_apps::experiment::{run_job, Instrumentation, RunSpec};
use iosim_apps::platform::FsChoice;
use iosim_apps::workloads::MpiIoTest;
use repro_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let app = if opts.quick {
        MpiIoTest::tiny(true)
    } else {
        let mut a = MpiIoTest::paper_config(FsChoice::Lustre, true);
        a.nodes = 8;
        a.ranks_per_node = 8;
        a
    };
    eprintln!("running MPI-IO-TEST...");
    let r = run_job(
        &app,
        &RunSpec::calm(FsChoice::Lustre, Instrumentation::DarshanOnly),
    );

    // Write the log the way darshan-runtime does at MPI_Finalize.
    let dir = opts.out.clone().unwrap_or_else(std::env::temp_dir);
    std::fs::create_dir_all(&dir).expect("create log dir");
    let path = dir.join("mpi-io-test_id259903.darshan");
    std::fs::write(&path, &r.log_bytes).expect("write log");
    eprintln!(
        "wrote {} ({} bytes); parsing it back:",
        path.display(),
        r.log_bytes.len()
    );

    // darshan-util side: read and summarize.
    let bytes = std::fs::read(&path).expect("read log");
    let log = darshan_sim::log::parse_log(&bytes).expect("parse log");
    print!("{}", log.summary());

    // DXT view: per-module segment counts, like darshan-dxt-parser.
    let mut per_module: std::collections::BTreeMap<&str, usize> = Default::default();
    for d in &log.dxt {
        *per_module.entry(d.module.name()).or_default() += d.segments.len();
    }
    println!("# DXT segments by module:");
    for (m, n) in per_module {
        println!("#   {m}: {n}");
    }
}
