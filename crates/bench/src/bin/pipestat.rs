//! `pipestat` — pipeline self-telemetry report for the paper workloads.
//!
//! Runs the four paper workloads through the full pipeline with the
//! telemetry hub enabled (`TelemetryConfig::trace_all()`, so every
//! message carries a trace context) and renders, per workload:
//!
//! * a **per-daemon metric table** from the registry — forwarded /
//!   ingested counters, retry-queue depth, parked frames, retry
//!   backoff histogram, WAL replays, heartbeat misses, and the DSOS
//!   store's dedup-hit counter. Compute-node samplers (`nidNNNNN`) are
//!   folded into one aggregate row to keep the table readable at 128
//!   ranks;
//! * a **per-hop latency table** from the sampled span log — publish,
//!   forward, park, retry, WAL-replay, and ingest hop latencies plus
//!   the end-to-end publish→ingest distribution (p50/p95/max in
//!   virtual milliseconds);
//! * an **online-detection report**: the Figure 7–9 campaign rerun
//!   with the streaming anomaly detector riding every job (live and
//!   fleet-level findings), plus exact precision/recall of the
//!   detector against the labeled scenario corpus — exported as the
//!   `detection_*` families in the JSON snapshot and gated by the CI
//!   `detect` job;
//! * a **live diagnosis hub** section: the shared anomalous MPI-IO run
//!   with streaming detection, exported as the `hub_timeline`
//!   (multi-resolution metric ring) and `detection_live_stream`
//!   (per-finding emit instants) families and gated on exact live vs
//!   settle-replay parity.
//!
//! Emits `BENCH_pipestat.json` (one registry + latency snapshot per
//! workload, via the hub's JSON exporter) and `BENCH_pipestat.prom`
//! (the Prometheus-style text exposition of the headline HACC-IO run).
//! Exits non-zero if any workload loses messages, leaves the delivery
//! ledger unbalanced, completes zero traces, or renders an empty
//! exposition — the CI `telemetry-smoke` job gates on this binary.

use darshan_ldms_connector::{
    DeliveryMode, FaultScript, OverloadConfig, Pipeline, QueueConfig, TelemetryConfig,
    WorkloadSpec, DEFAULT_STREAM_TAG,
};
use hpcws_sim::online::{OnlineDetector, OnlineEvent};
use hpcws_sim::{AnomalyKind, DetectionConfig, DiagnosticEvent};
use iolint::{analyze_flow, FlowReport, Role, TopologySpec};
use iosim_apps::detect::row_to_event;
use iosim_apps::experiment::{run_job, Instrumentation, RunSpec};
use iosim_apps::platform::FsChoice;
use iosim_apps::workloads::{HaccIo, Hmmer, MpiIoTest, Sw4, Workload};
use iosim_telemetry::{HistogramSnapshot, HopKind, LatencySummary, Metric};
use iosim_util::table::TextTable;
use repro_bench::HarnessOpts;
use repro_suite::scenario;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Metric families rendered as table columns, in display order. Must
/// track the families registered by `Ldmsd::attach_telemetry` and the
/// DSOS store.
const FAMILIES: [&str; 14] = [
    "forwarded",
    "ingested",
    "queue_depth",
    "parked_frames",
    "retries",
    "retry_backoff_ms",
    "wal_replayed",
    "heartbeat_misses",
    "ingest_dedup_hits",
    "overload_depth",
    "overload_throttled",
    "overload_spilled",
    "overload_folded",
    "overload_summaries",
];

fn workloads(quick: bool) -> Vec<(&'static str, Box<dyn Workload>)> {
    let scale = if quick { 1 } else { 2 };
    vec![
        (
            "HACC-IO",
            Box::new(HaccIo {
                nodes: 32 * scale,
                ranks_per_node: 4,
                particles_per_rank: 50_000,
                path: "/scratch/hacc-io.pipestat".to_string(),
            }) as Box<dyn Workload>,
        ),
        (
            "MPI-IO-TEST",
            Box::new(MpiIoTest {
                iterations: 4,
                block: 1 << 20,
                ..MpiIoTest {
                    nodes: 8 * scale,
                    ranks_per_node: 4,
                    ..MpiIoTest::tiny(false)
                }
            }),
        ),
        (
            "HMMER",
            Box::new(Hmmer {
                ranks: 8,
                families: 400 * u64::from(scale),
                sequences: 8_000 * u64::from(scale),
                ..Hmmer::tiny()
            }),
        ),
        (
            "sw4",
            Box::new(Sw4 {
                nodes: 4 * scale,
                ranks_per_node: 4,
                grid: [64, 64, 32],
                steps: 8,
                checkpoint_every: 2,
                compute_s_per_step: 0.01,
                path: "/scratch/sw4.pipestat".to_string(),
            }),
        ),
    ]
}

/// One daemon's (or daemon group's) value for one family, summed so
/// sampler rows can be folded together.
#[derive(Default, Clone, Copy)]
struct Cell {
    value: u64,
    hist: Option<HistogramSnapshot>,
    present: bool,
}

impl Cell {
    fn absorb(&mut self, m: &Metric) {
        self.present = true;
        match m {
            Metric::Counter(c) => self.value += c.get(),
            Metric::Gauge(g) => self.value += g.get(),
            Metric::Histogram(h) => {
                let s = h.snapshot();
                let acc = self.hist.get_or_insert_with(HistogramSnapshot::default);
                acc.count += s.count;
                acc.sum = acc.sum.saturating_add(s.sum);
                acc.max = acc.max.max(s.max);
                acc.p50 = acc.p50.max(s.p50);
                acc.p95 = acc.p95.max(s.p95);
            }
        }
    }

    fn render(&self) -> String {
        if !self.present {
            return "-".to_string();
        }
        match self.hist {
            Some(s) if s.count > 0 => format!("n={} p95={}ms", s.count, s.p95),
            Some(_) => "n=0".to_string(),
            None => self.value.to_string(),
        }
    }
}

/// Folds the registry's `family -> daemon -> metric` map into
/// `row label -> family -> cell`, collapsing `nidNNNNN` samplers into
/// one aggregate row.
fn daemon_rows(
    families: &[(String, Vec<(String, Metric)>)],
) -> (BTreeMap<String, BTreeMap<String, Cell>>, usize) {
    let mut rows: BTreeMap<String, BTreeMap<String, Cell>> = BTreeMap::new();
    let mut samplers = std::collections::BTreeSet::new();
    for (family, series) in families {
        for (daemon, metric) in series {
            let label = if daemon.starts_with("nid") {
                samplers.insert(daemon.clone());
                "nid* (samplers)".to_string()
            } else {
                daemon.clone()
            };
            rows.entry(label)
                .or_default()
                .entry(family.clone())
                .or_default()
                .absorb(metric);
        }
    }
    (rows, samplers.len())
}

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Runs the flow solver over the topology a run actually used, under
/// the rate envelope the run realized (total observed message rate,
/// split evenly across samplers). For the calm paper workloads — no
/// faults, no controller — the solver's ceilings are hard promises the
/// run must stay inside; storms are bursty and only get the floor
/// printed, not gated.
fn static_bounds(p: &Pipeline, messages: u64, msg_rate: f64) -> FlowReport {
    let mut spec = TopologySpec::from_pipeline(p, DEFAULT_STREAM_TAG, &FaultScript::new());
    let samplers = spec
        .daemons
        .iter()
        .filter(|d| d.role == Role::Sampler)
        .count()
        .max(1);
    let per_sampler = (msg_rate / samplers as f64).max(1e-9);
    for d in &mut spec.daemons {
        if d.role == Role::Sampler {
            d.rate_hz = Some(per_sampler);
        }
    }
    let duration = messages as f64 / msg_rate.max(1e-9);
    let w = WorkloadSpec::new(duration).with_default_rate(per_sampler);
    analyze_flow(&spec, Some(&w))
}

fn hop_table(latency: &LatencySummary) -> TextTable {
    let mut t = TextTable::new(vec![
        "hop",
        "spans",
        "p50 (ms)",
        "p95 (ms)",
        "max (ms)",
        "mean (ms)",
    ]);
    for kind in HopKind::ALL {
        let s = latency.hop(kind);
        if s.count == 0 {
            continue;
        }
        t.row(vec![
            kind.as_str().to_string(),
            s.count.to_string(),
            ms(s.p50),
            ms(s.p95),
            ms(s.max),
            format!("{:.3}", s.mean() / 1e6),
        ]);
    }
    let e = &latency.end_to_end;
    t.row(vec![
        "end-to-end".to_string(),
        e.count.to_string(),
        ms(e.p50),
        ms(e.p95),
        ms(e.max),
        format!("{:.3}", e.mean() / 1e6),
    ]);
    t
}

fn main() {
    let opts = HarnessOpts::from_args();
    let mut failures: Vec<String> = Vec::new();
    let mut json = String::from("{\n  \"benchmark\": \"pipestat\",\n");
    let _ = writeln!(json, "  \"quick\": {},", opts.quick);
    json.push_str("  \"workloads\": [\n");
    let mut headline_prom = String::new();

    println!("pipestat: pipeline self-telemetry report (trace-all sampling)");
    let apps = workloads(opts.quick);
    for (wi, (name, app)) in apps.iter().enumerate() {
        let spec = RunSpec::calm(FsChoice::Lustre, Instrumentation::connector_default())
            .with_store(true)
            .with_telemetry(TelemetryConfig::trace_all());
        let r = run_job(app.as_ref(), &spec);
        let p = r.pipeline.as_ref().expect("connector run has a pipeline");
        let tel = p.telemetry().expect("telemetry was requested").clone();
        let balanced = p.ledger().balances();
        let prom = tel.render_prometheus();
        let families = tel.registry().families();
        let (rows, sampler_count) = daemon_rows(&families);

        println!(
            "\n== {name} ==  {} msgs published, {} lost, ledger {}",
            r.messages,
            r.messages_lost,
            if balanced { "balanced" } else { "UNBALANCED" }
        );
        println!(
            "  {} metric series across {} daemons ({} samplers folded), {} traces / {} spans ({} dropped)",
            tel.registry().series_count(),
            rows.len() + sampler_count.saturating_sub(1),
            sampler_count,
            r.latency.traces,
            r.latency.spans,
            r.latency.spans_dropped,
        );

        let mut header = vec!["daemon".to_string()];
        header.extend(FAMILIES.iter().map(|f| (*f).to_string()));
        let mut table = TextTable::new(header);
        for (label, cells) in &rows {
            let mut row = vec![label.clone()];
            for family in FAMILIES {
                row.push(cells.get(family).copied().unwrap_or_default().render());
            }
            table.row(row);
        }
        println!("\n{}", table.render());
        println!("{}", hop_table(&r.latency).render());

        // Static worst-case bounds vs what the run observed. Calm runs
        // sit strictly inside the solver's ceilings or the binary (and
        // the CI job gating on it) fails.
        let flow = static_bounds(p, r.messages, r.msg_rate);
        let p95_s = r.latency.p95_end_to_end_s();
        let mut bound_table = TextTable::new(vec!["quantity", "static bound", "observed"]);
        bound_table.row(vec![
            "lost messages".into(),
            format!("<= {:.0}", flow.loss_ceiling),
            r.messages_lost.to_string(),
        ]);
        bound_table.row(vec![
            "summarized".into(),
            format!("<= {:.0}", flow.summarized_ceiling),
            r.messages_summarized.to_string(),
        ]);
        bound_table.row(vec![
            "e2e p95 (s)".into(),
            format!("<= {:.1}", flow.e2e_latency_s),
            format!("{p95_s:.4}"),
        ]);
        println!("{}", bound_table.render());
        if r.messages_lost as f64 > flow.loss_ceiling + 0.5 {
            failures.push(format!(
                "{name}: lost {} > static ceiling {:.0}",
                r.messages_lost, flow.loss_ceiling
            ));
        }
        if r.messages_summarized as f64 > flow.summarized_ceiling + 0.5 {
            failures.push(format!(
                "{name}: summarized {} > static ceiling {:.0}",
                r.messages_summarized, flow.summarized_ceiling
            ));
        }
        if p95_s > flow.e2e_latency_s {
            failures.push(format!(
                "{name}: e2e p95 {p95_s:.3}s > static bound {:.1}s",
                flow.e2e_latency_s
            ));
        }

        if r.messages_lost != 0 || !balanced {
            failures.push(format!(
                "{name}: lost {} messages (balanced: {balanced})",
                r.messages_lost
            ));
        }
        if r.latency.traces == 0 || r.latency.end_to_end.count == 0 {
            failures.push(format!(
                "{name}: no completed traces despite trace-all sampling"
            ));
        }
        if prom.is_empty() {
            failures.push(format!("{name}: empty Prometheus exposition"));
        }
        if *name == "HACC-IO" {
            headline_prom = prom;
        }

        let _ = writeln!(json, "    {{\n      \"workload\": \"{name}\",");
        let _ = writeln!(json, "      \"messages\": {},", r.messages);
        let _ = writeln!(json, "      \"lost\": {},", r.messages_lost);
        let _ = writeln!(json, "      \"summarized\": {},", r.messages_summarized);
        let _ = writeln!(json, "      \"accuracy\": {:.6},", r.accuracy);
        let _ = writeln!(json, "      \"balanced\": {balanced},");
        let _ = writeln!(
            json,
            "      \"flow_bounds\": {{\"loss_ceiling\": {:.3}, \"summarized_ceiling\": {:.3}, \"e2e_latency_s\": {:.3}}},",
            flow.loss_ceiling, flow.summarized_ceiling, flow.e2e_latency_s
        );
        let _ = writeln!(json, "      \"snapshot\": {}", tel.render_json());
        let _ = writeln!(json, "    }}{}", if wi + 1 < apps.len() { "," } else { "" });
    }
    json.push_str("  ],\n");

    // Online anomaly detection: the Figure 7–9 MPI-IO campaign with
    // live detection riding every job (job 2 carries the injected
    // congestion anomaly), a fleet-level replay over all stored rows,
    // and the labeled scenario corpus scored for exact precision and
    // recall. The CI `detect` job gates on this section: calm jobs
    // must stay silent, job 302 must alarm live with TRC011 and at
    // fleet level on its reads, and the corpus quality gates
    // (precision ≥ 0.9, recall ≥ 0.8 per class) must hold.
    println!("\n== online anomaly detection (Figure 7-9 campaign) ==");
    let runs = iosim_apps::figdata::mpi_io_figure_runs(4, opts.quick);
    let mut live: Vec<DiagnosticEvent> = Vec::new();
    for (i, r) in runs.results.iter().enumerate() {
        let job = runs.job_ids[i];
        if job == 302 {
            let write_hit = r
                .detections
                .iter()
                .any(|d| d.kind == AnomalyKind::DurationOutlier && d.op == "write");
            if !write_hit {
                failures.push("detection: job 302's write slowdown was not flagged live".into());
            }
            if !r.trace_report.codes().contains("TRC011") {
                failures.push("detection: TRC011 missing from job 302's trace report".into());
            }
        } else if !r.detections.is_empty() {
            failures.push(format!(
                "detection: calm job {job} raised {} false alarms",
                r.detections.len()
            ));
        }
        live.extend(r.detections.iter().cloned());
    }

    // Fleet replay: one detector across all four jobs' stored rows.
    // Cross-job baselines catch what no single run can — job 302's
    // reads are uniformly slow, invisible to its own history but an
    // extreme outlier against the fleet's cached reads. Window sizing
    // is tuned to the quick campaign's timescales, so the pass (and
    // its gate) runs in quick mode only.
    let fleet: Vec<DiagnosticEvent> = if opts.quick {
        let mut events: Vec<OnlineEvent> = Vec::new();
        for (&job_id, r) in runs.job_ids.iter().zip(&runs.results) {
            let p = r.pipeline.as_ref().expect("figure runs store events");
            events.extend(
                p.events_of_job(job_id)
                    .iter()
                    .filter_map(|r| row_to_event(r)),
            );
        }
        events.sort_by(|a, b| {
            a.end
                .total_cmp(&b.end)
                .then_with(|| a.job_id.cmp(&b.job_id))
                .then_with(|| a.rank.cmp(&b.rank))
                .then_with(|| a.op.cmp(&b.op))
                .then_with(|| a.file.cmp(&b.file))
                .then_with(|| a.len.cmp(&b.len))
                .then_with(|| a.off.cmp(&b.off))
        });
        let cfg = DetectionConfig {
            baseline_min_windows: 2,
            ..DetectionConfig::default().with_window_s(0.05)
        };
        let mut det = OnlineDetector::new(cfg);
        for e in &events {
            det.observe(e);
        }
        let fleet = det.finish();
        if !fleet
            .iter()
            .any(|d| d.job_id == 302 && d.kind == AnomalyKind::DurationOutlier && d.op == "read")
        {
            failures.push("detection: fleet pass missed job 302's read anomaly".into());
        }
        if fleet.iter().any(|d| d.job_id != 302) {
            failures.push("detection: fleet pass flagged a calm job".into());
        }
        fleet
    } else {
        Vec::new()
    };

    let mut det_table = TextTable::new(vec![
        "source",
        "kind",
        "severity",
        "job",
        "rank",
        "op",
        "onset (s)",
        "detected (s)",
        "observed (s)",
        "baseline (s)",
    ]);
    for (src, d) in live
        .iter()
        .map(|d| ("live", d))
        .chain(fleet.iter().map(|d| ("fleet", d)))
    {
        det_table.row(vec![
            src.to_string(),
            d.kind.to_string(),
            d.severity.as_str().to_string(),
            d.job_id.to_string(),
            d.rank.map_or_else(|| "-".to_string(), |r| r.to_string()),
            d.op.clone(),
            format!("{:.3}", d.onset),
            format!("{:.3}", d.detected_at),
            format!("{:.6}", d.observed),
            format!("{:.6}", d.baseline),
        ]);
    }
    println!("{}", det_table.render());

    println!("== detection quality vs labeled scenario corpus (seeds 1/7/42) ==");
    let mut quality: BTreeMap<scenario::AnomalyClass, scenario::ClassQuality> = BTreeMap::new();
    for seed in [1u64, 7, 42] {
        for sc in scenario::corpus(seed) {
            let mut det = OnlineDetector::new(DetectionConfig::default());
            for e in &sc.events {
                det.observe(e);
            }
            let dets = det.finish();
            if sc.class == scenario::AnomalyClass::CalmControl {
                if !dets.is_empty() {
                    failures.push(format!(
                        "detection: calm control (seed {seed}) raised {} false alarms",
                        dets.len()
                    ));
                }
                continue;
            }
            for (class, q) in scenario::evaluate(&dets, &sc.labels, 10.0) {
                quality.entry(class).or_default().absorb(q);
            }
        }
    }
    let mut quality_table = TextTable::new(vec![
        "class",
        "tp",
        "fp",
        "fn",
        "precision",
        "recall",
        "gate",
    ]);
    for (class, q) in &quality {
        let ok = q.precision() >= 0.9 && q.recall() >= 0.8;
        if !ok {
            failures.push(format!(
                "detection: {} precision {:.3} / recall {:.3} below the 0.9/0.8 gates",
                class.as_str(),
                q.precision(),
                q.recall()
            ));
        }
        quality_table.row(vec![
            class.as_str().to_string(),
            q.true_positives.to_string(),
            q.false_positives.to_string(),
            q.false_negatives.to_string(),
            format!("{:.3}", q.precision()),
            format!("{:.3}", q.recall()),
            (if ok { "pass" } else { "FAIL" }).to_string(),
        ]);
    }
    println!("{}", quality_table.render());

    let json_det = |d: &DiagnosticEvent| {
        format!(
            "{{\"kind\": \"{}\", \"severity\": \"{}\", \"job\": {}, \"rank\": {}, \"op\": \"{}\", \
             \"onset_s\": {:.3}, \"detected_s\": {:.3}, \"observed_s\": {:.6}, \"baseline_s\": {:.6}}}",
            d.kind,
            d.severity.as_str(),
            d.job_id,
            d.rank.map_or_else(|| "null".to_string(), |r| r.to_string()),
            d.op,
            d.onset,
            d.detected_at,
            d.observed,
            d.baseline
        )
    };
    for (key, dets) in [("detection_live", &live), ("detection_fleet", &fleet)] {
        let _ = writeln!(json, "  \"{key}\": [");
        for (i, d) in dets.iter().enumerate() {
            let _ = writeln!(
                json,
                "    {}{}",
                json_det(d),
                if i + 1 < dets.len() { "," } else { "" }
            );
        }
        json.push_str("  ],\n");
    }
    json.push_str("  \"detection_quality\": [\n");
    for (i, (class, q)) in quality.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"class\": \"{}\", \"true_positives\": {}, \"false_positives\": {}, \
             \"false_negatives\": {}, \"precision\": {:.4}, \"recall\": {:.4}}}{}",
            class.as_str(),
            q.true_positives,
            q.false_positives,
            q.false_negatives,
            q.precision(),
            q.recall(),
            if i + 1 < quality.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");

    // Live diagnosis hub: the shared anomalous MPI-IO run with
    // streaming detection and the hub collecting snapshots, health,
    // fault, and detection events. Exported as the `hub_timeline`
    // (multi-resolution metric ring) and `detection_live_stream`
    // (per-finding emit instants) families; gated on exact live vs
    // settle-replay parity.
    println!("\n== live diagnosis hub (anomalous MPI-IO run) ==");
    let live_run = repro_bench::livehub::run(true, 1);
    let hub = live_run
        .pipeline
        .as_ref()
        .and_then(|p| p.telemetry())
        .and_then(|t| t.diag())
        .cloned()
        .expect("livehub spec enables the hub");
    let in_run = live_run.live_detections.iter().filter(|l| l.in_run).count();
    println!(
        "  {} hub events, {} timeline rows, {} detections ({} emitted in-run)",
        hub.published(),
        hub.timeline().len(),
        live_run.detections.len(),
        in_run
    );
    if live_run.detections.is_empty() {
        failures.push("livehub: the injected storm was not detected".into());
    }
    if live_run.live_detections.len() != live_run.detections.len()
        || live_run
            .detections
            .iter()
            .any(|d| !live_run.live_detections.iter().any(|l| &l.event == d))
    {
        failures.push("livehub: live stream != settle-replay oracle".into());
    }
    if hub.timeline().is_empty() {
        failures.push("livehub: snapshot cadence left the timeline ring empty".into());
    }
    let _ = writeln!(
        json,
        "  \"hub_timeline\": {},",
        repro_bench::livehub::timeline_json(&hub)
    );
    let _ = writeln!(
        json,
        "  \"detection_live_stream\": {},",
        repro_bench::livehub::live_stream_json(&live_run.live_detections)
    );

    // Achieved accuracy vs offered load: the HMMER storm rerun with an
    // overload controller whose service rate is 1×, 4× and 16×
    // oversubscribed. Accuracy is the individually-delivered fraction
    // of the event mass that reached the store; the remainder arrived
    // at summary fidelity. The ledger must balance exactly at every
    // load point — degradation is never silent loss.
    println!("\n== achieved accuracy vs offered load (HMMER storm) ==");
    let storm_app = Hmmer {
        ranks: 8,
        families: if opts.quick { 100 } else { 400 },
        sequences: if opts.quick { 2_000 } else { 8_000 },
        ..Hmmer::tiny()
    };
    let calib = run_job(
        &storm_app,
        &RunSpec::calm(FsChoice::Lustre, Instrumentation::connector_default())
            .with_store(true)
            .with_delivery(DeliveryMode::Deferred),
    );
    let offered = calib.msg_rate;
    let mut load_table = TextTable::new(vec![
        "offered load",
        "service rate (msg/s)",
        "accuracy",
        "static floor",
        "summarized",
        "lost",
        "ledger",
    ]);
    json.push_str("  \"overload\": [\n");
    let loads = [1.0f64, 4.0, 16.0];
    for (li, &x) in loads.iter().enumerate() {
        let rate = offered / x;
        let mut spec = RunSpec::calm(FsChoice::Lustre, Instrumentation::connector_default())
            .with_store(true)
            .with_delivery(DeliveryMode::Deferred)
            .with_queue(QueueConfig::reliable().with_capacity(4096))
            .with_overload(OverloadConfig::for_rate(rate));
        // The most oversubscribed point doubles as the overload-metric
        // showcase: telemetry on, so the per-daemon table below shows
        // the overload_* families next to the transport counters.
        if li + 1 == loads.len() {
            spec = spec.with_telemetry(TelemetryConfig::trace_all());
        }
        let r = run_job(&storm_app, &spec);
        let p = r.pipeline.as_ref().expect("connector run has a pipeline");
        let balanced = p.ledger().balances();
        // Informational only: real storms are bursty while the solver's
        // envelope is fluid, so the static floor is shown beside the
        // achieved accuracy but not gated here (the soundness suite
        // gates it on rate-controlled scenarios).
        let floor = static_bounds(p, r.messages, r.msg_rate).accuracy_floor;
        load_table.row(vec![
            format!("{x}x"),
            format!("{rate:.0}"),
            format!("{:.4}", r.accuracy),
            format!(">= {floor:.4}"),
            r.messages_summarized.to_string(),
            r.messages_lost.to_string(),
            if balanced { "balanced" } else { "UNBALANCED" }.to_string(),
        ]);
        if !balanced {
            failures.push(format!("HMMER storm {x}x: ledger unbalanced"));
        }
        if let Some(tel) = p.telemetry() {
            p.network().sync_overload_telemetry();
            let (rows, _) = daemon_rows(&tel.registry().families());
            let mut header = vec!["daemon".to_string()];
            header.extend(FAMILIES.iter().map(|f| (*f).to_string()));
            let mut table = TextTable::new(header);
            for (label, cells) in &rows {
                let mut row = vec![label.clone()];
                for family in FAMILIES {
                    row.push(cells.get(family).copied().unwrap_or_default().render());
                }
                table.row(row);
            }
            println!("\n(16x storm daemon metrics)\n{}", table.render());
        }
        let _ = writeln!(
            json,
            "    {{\"offered_load\": {x}, \"service_rate\": {rate:.3}, \"accuracy\": {:.6}, \"summarized\": {}, \"lost\": {}, \"balanced\": {balanced}}}{}",
            r.accuracy,
            r.messages_summarized,
            r.messages_lost,
            if li + 1 < loads.len() { "," } else { "" },
        );
    }
    println!("{}", load_table.render());
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_pipestat.json", &json).expect("write BENCH_pipestat.json");
    std::fs::write("BENCH_pipestat.prom", &headline_prom).expect("write BENCH_pipestat.prom");
    eprintln!("\nwrote BENCH_pipestat.json and BENCH_pipestat.prom");
    opts.write_artifact("BENCH_pipestat.json", &json);
    opts.write_artifact("BENCH_pipestat.prom", &headline_prom);

    if !failures.is_empty() {
        eprintln!("\nFAILURES:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
