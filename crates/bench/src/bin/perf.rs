//! `perf` — hot-path throughput benchmark for the streaming pipeline.
//!
//! Runs the paper's four workloads through the full pipeline in the
//! 2×2 delivery matrix — {unbatched, batched} × {serial, parallel} —
//! and reports wall-clock message throughput plus per-hop retry-queue
//! depths. "Serial" is the seed path ([`DeliveryMode::Immediate`]:
//! every rank thread publishes into the shared pipeline at event time,
//! contending on its locks); "parallel" is rank-local outbox buffering
//! with a deterministic post-job merge ([`DeliveryMode::Deferred`]).
//!
//! Throughput is *pipeline-attributable*: each workload first runs a
//! Darshan-only baseline (identical I/O, no connector), and the
//! baseline's wall time — the cost of simulating the application
//! itself, identical in all four modes — is subtracted before dividing
//! messages by time. Raw wall times are reported alongside.
//!
//! Emits `BENCH_pipeline.json` into the current directory (and into
//! `--out DIR` when given). Exits non-zero if the batched+parallel
//! configuration fails to beat the unbatched+serial seed path on the
//! headline HACC-IO workload or in geometric mean across the matrix,
//! or if any mode loses or mis-stores messages — making this binary
//! usable as a CI regression gate (`perf --quick`). The small
//! workloads run for milliseconds, where scheduler noise can outweigh
//! the pipeline cost, so an individual shortfall there is reported but
//! does not fail the gate on its own.

use darshan_ldms_connector::{BatchConfig, DeliveryMode, OverloadConfig, QueueConfig};
use iosim_apps::experiment::{run_job, Instrumentation, RunSpec};
use iosim_apps::platform::FsChoice;
use iosim_apps::workloads::{HaccIo, Hmmer, MpiIoTest, Sw4, Workload};
use iosim_time::SimDuration;
use repro_bench::HarnessOpts;
use std::fmt::Write as _;
use std::time::Instant;

/// Records coalesced per frame in the batched modes.
const FRAME_SIZE: usize = 16;

struct ModeResult {
    label: &'static str,
    batched: bool,
    parallel: bool,
    /// Best (minimum) wall time over the iterations, seconds.
    wall_s: f64,
    /// Wall time attributable to the pipeline: `wall_s` minus the
    /// Darshan-only baseline, floored at 2% of `wall_s`.
    pipeline_s: f64,
    /// Logical messages published per run.
    messages: u64,
    /// Wire messages (frames) per run.
    wire_messages: u64,
    /// Logical messages per pipeline-attributable second.
    throughput: f64,
    stored: u64,
    lost: u64,
    balanced: bool,
    /// `(hop, queued_now, high_water)` for hops that ever queued.
    depths: Vec<(String, usize, u64)>,
}

fn workloads(quick: bool) -> Vec<(&'static str, Box<dyn Workload>)> {
    // The node counts are deliberately high relative to the per-rank
    // event counts: the seed path pays a pump over every daemon per
    // publish, so wide jobs are where batching earns its keep.
    let scale = if quick { 1 } else { 2 };
    vec![
        (
            "HACC-IO",
            Box::new(HaccIo {
                nodes: 32 * scale,
                ranks_per_node: 4,
                particles_per_rank: 50_000,
                path: "/scratch/hacc-io.perf".to_string(),
            }) as Box<dyn Workload>,
        ),
        (
            "MPI-IO-TEST",
            Box::new(MpiIoTest {
                iterations: 4,
                block: 1 << 20,
                ..MpiIoTest {
                    nodes: 8 * scale,
                    ranks_per_node: 4,
                    ..MpiIoTest::tiny(false)
                }
            }),
        ),
        (
            "HMMER",
            Box::new(Hmmer {
                ranks: 8,
                families: 400 * u64::from(scale),
                sequences: 8_000 * u64::from(scale),
                ..Hmmer::tiny()
            }),
        ),
        (
            "sw4",
            Box::new(Sw4 {
                nodes: 4 * scale,
                ranks_per_node: 4,
                grid: [64, 64, 32],
                steps: 8,
                checkpoint_every: 2,
                compute_s_per_step: 0.01,
                path: "/scratch/sw4.perf".to_string(),
            }),
        ),
    ]
}

/// Best-of-`iters` wall time of the Darshan-only baseline: the cost of
/// simulating the application itself, with no connector attached.
fn baseline_wall(app: &dyn Workload, iters: u32) -> f64 {
    let spec = RunSpec::calm(FsChoice::Lustre, Instrumentation::DarshanOnly);
    let mut wall_s = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        run_job(app, &spec);
        wall_s = wall_s.min(t0.elapsed().as_secs_f64());
    }
    wall_s
}

fn run_mode(
    app: &dyn Workload,
    label: &'static str,
    batched: bool,
    parallel: bool,
    iters: u32,
    baseline_s: f64,
) -> ModeResult {
    let batch = if batched {
        // Count-bound only: the default 1 s virtual age flush would
        // split a rank's stream into several short frames (rank events
        // span whole virtual seconds), hiding the wire-reduction the
        // benchmark exists to measure. Latency is irrelevant here.
        BatchConfig::frames_of(FRAME_SIZE).with_max_delay(SimDuration::from_secs(1 << 20))
    } else {
        BatchConfig::disabled()
    };
    let delivery = if parallel {
        DeliveryMode::Deferred
    } else {
        DeliveryMode::Immediate
    };
    let spec = RunSpec::calm(FsChoice::Lustre, Instrumentation::connector_default())
        .with_store(true)
        .with_batch(batch)
        .with_delivery(delivery);

    let mut wall_s = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let r = run_job(app, &spec);
        wall_s = wall_s.min(t0.elapsed().as_secs_f64());
        last = Some(r);
    }
    let r = last.expect("at least one iteration");
    let p = r.pipeline.as_ref().expect("connector run has a pipeline");
    let depths: Vec<(String, usize, u64)> = p
        .network()
        .queue_depths()
        .into_iter()
        .filter(|&(_, queued, hw)| queued > 0 || hw > 0)
        .collect();
    let pipeline_s = (wall_s - baseline_s).max(wall_s * 0.02);
    ModeResult {
        label,
        batched,
        parallel,
        wall_s,
        pipeline_s,
        messages: r.messages,
        wire_messages: r.wire_messages,
        throughput: r.messages as f64 / pipeline_s,
        stored: p.stored_events() as u64,
        lost: r.messages_lost,
        balanced: p.ledger().balances(),
        depths,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let opts = HarnessOpts::from_args();
    let iters = if opts.quick { 2 } else { 3 };
    let mut failures: Vec<String> = Vec::new();
    let mut speedups: Vec<(&str, f64)> = Vec::new();
    let mut json = String::from("{\n  \"benchmark\": \"pipeline-hot-path\",\n");
    let _ = writeln!(json, "  \"quick\": {},", opts.quick);
    let _ = writeln!(json, "  \"iters\": {iters},");
    let _ = writeln!(json, "  \"frame_size\": {FRAME_SIZE},");
    json.push_str("  \"workloads\": [\n");

    println!(
        "pipeline hot-path benchmark ({} iters/mode, best-of)",
        iters
    );
    let apps = workloads(opts.quick);
    for (wi, (name, app)) in apps.iter().enumerate() {
        println!("\n== {name} ==");
        let baseline_s = baseline_wall(app.as_ref(), iters);
        println!("  darshan-only baseline: {:.1} ms", baseline_s * 1e3);
        let modes = [
            run_mode(
                app.as_ref(),
                "unbatched-serial",
                false,
                false,
                iters,
                baseline_s,
            ),
            run_mode(
                app.as_ref(),
                "batched-serial",
                true,
                false,
                iters,
                baseline_s,
            ),
            run_mode(
                app.as_ref(),
                "unbatched-parallel",
                false,
                true,
                iters,
                baseline_s,
            ),
            run_mode(
                app.as_ref(),
                "batched-parallel",
                true,
                true,
                iters,
                baseline_s,
            ),
        ];

        // Correctness guards: every mode must deliver the identical
        // logical stream — same publish count, same stored rows, no
        // loss, balanced ledger.
        let seed_mode = &modes[0];
        for m in &modes {
            if m.messages != seed_mode.messages || m.stored != seed_mode.stored {
                failures.push(format!(
                    "{name}/{}: stored {} of {} msgs (seed path: {} of {})",
                    m.label, m.stored, m.messages, seed_mode.stored, seed_mode.messages
                ));
            }
            if m.lost != 0 || !m.balanced {
                failures.push(format!(
                    "{name}/{}: lost {} messages (balanced: {})",
                    m.label, m.lost, m.balanced
                ));
            }
            println!(
                "  {:<20} {:>9.1} msgs/s  wall {:>8.1} ms  pipe {:>7.1} ms  {:>7} msgs  {:>6} on wire",
                m.label,
                m.throughput,
                m.wall_s * 1e3,
                m.pipeline_s * 1e3,
                m.messages,
                m.wire_messages
            );
        }
        let speedup = modes[3].throughput / modes[0].throughput;
        println!("  batched+parallel speedup over seed path: {speedup:.2}x");
        speedups.push((*name, speedup));

        let _ = writeln!(json, "    {{\n      \"workload\": \"{name}\",");
        let _ = writeln!(json, "      \"baseline_wall_ms\": {:.3},", baseline_s * 1e3);
        let _ = writeln!(json, "      \"speedup_batched_parallel\": {speedup:.4},");
        json.push_str("      \"modes\": [\n");
        for (mi, m) in modes.iter().enumerate() {
            let _ = write!(
                json,
                "        {{\"mode\": \"{}\", \"batched\": {}, \"parallel\": {}, \
                 \"wall_ms\": {:.3}, \"pipeline_ms\": {:.3}, \"messages\": {}, \
                 \"wire_messages\": {}, \
                 \"throughput_msgs_per_s\": {:.1}, \"stored\": {}, \"lost\": {}, \
                 \"queue_depths\": [",
                m.label,
                m.batched,
                m.parallel,
                m.wall_s * 1e3,
                m.pipeline_s * 1e3,
                m.messages,
                m.wire_messages,
                m.throughput,
                m.stored,
                m.lost
            );
            for (di, (hop, queued, hw)) in m.depths.iter().enumerate() {
                let _ = write!(
                    json,
                    "{}{{\"hop\": \"{}\", \"queued\": {queued}, \"high_water\": {hw}}}",
                    if di > 0 { ", " } else { "" },
                    json_escape(hop)
                );
            }
            let _ = writeln!(json, "]}}{}", if mi + 1 < modes.len() { "," } else { "" });
        }
        json.push_str("      ]\n");
        let _ = writeln!(json, "    }}{}", if wi + 1 < apps.len() { "," } else { "" });
    }
    json.push_str("  ],\n");

    // ------------------------------------------------------------------
    // Overload sweep: HMMER driven at 1x / 4x / 16x its own offered
    // load, against a controller provisioned for `offered / x`. Reports
    // the achieved accuracy (individually-delivered fraction of the
    // event mass) and the sustained wall-clock throughput at each
    // point — folding bulk events into sketches sheds downstream work,
    // so throughput should hold or rise while accuracy degrades.
    let (_, storm_app) = apps
        .iter()
        .find(|(n, _)| *n == "HMMER")
        .expect("HMMER is in the matrix");
    let storm_base = RunSpec::calm(FsChoice::Lustre, Instrumentation::connector_default())
        .with_store(true)
        .with_delivery(DeliveryMode::Deferred)
        .with_queue(QueueConfig::reliable().with_capacity(4096));
    let probe = run_job(storm_app.as_ref(), &storm_base);
    let offered = probe.msg_rate;
    let baseline_s = baseline_wall(storm_app.as_ref(), iters);
    println!("\n== HMMER overload sweep (offered {offered:.0} msgs/s virtual) ==");
    json.push_str("  \"overload_sweep\": [\n");
    let mut prev_accuracy = f64::INFINITY;
    let loads = [1.0f64, 4.0, 16.0];
    for (oi, &x) in loads.iter().enumerate() {
        let rate = offered / x;
        let spec = storm_base
            .clone()
            .with_overload(OverloadConfig::for_rate(rate));
        let mut wall_s = f64::INFINITY;
        let mut last = None;
        for _ in 0..iters {
            let t0 = Instant::now();
            let r = run_job(storm_app.as_ref(), &spec);
            wall_s = wall_s.min(t0.elapsed().as_secs_f64());
            last = Some(r);
        }
        let r = last.expect("at least one iteration");
        let p = r.pipeline.as_ref().expect("connector run has a pipeline");
        let balanced = p.ledger().balances();
        let pipeline_s = (wall_s - baseline_s).max(wall_s * 0.02);
        let throughput = r.messages as f64 / pipeline_s;
        println!(
            "  {:>4.0}x load (service {rate:>7.0} msgs/s)  accuracy {:>6.4}  {:>9.1} msgs/s sustained  \
             {:>6} summarized  {:>4} lost",
            x, r.accuracy, throughput, r.messages_summarized, r.messages_lost
        );
        if !balanced || r.messages_lost != 0 {
            failures.push(format!(
                "HMMER overload {x:.0}x: lost {} messages (balanced: {balanced})",
                r.messages_lost
            ));
        }
        if r.accuracy > prev_accuracy + 1e-9 {
            failures.push(format!(
                "HMMER overload {x:.0}x: accuracy {:.4} rose above the lighter load's {:.4}",
                r.accuracy, prev_accuracy
            ));
        }
        prev_accuracy = r.accuracy;
        if x >= 16.0 && r.messages_summarized == 0 {
            failures.push(format!(
                "HMMER overload {x:.0}x: a 16x-oversubscribed controller never degraded into sampling"
            ));
        }
        let _ = writeln!(
            json,
            "    {{\"workload\": \"HMMER\", \"offered_load\": {x:.1}, \
             \"offered_rate_msgs_per_s\": {offered:.1}, \"service_rate_msgs_per_s\": {rate:.1}, \
             \"wall_ms\": {:.3}, \"throughput_msgs_per_s\": {throughput:.1}, \
             \"accuracy\": {:.4}, \"summarized\": {}, \"lost\": {}, \"balanced\": {}}}{}",
            wall_s * 1e3,
            r.accuracy,
            r.messages_summarized,
            r.messages_lost,
            balanced,
            if oi + 1 < loads.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");

    // The speedup gate: the headline workload must win outright, and
    // the matrix as a whole (geometric mean) must not regress. The
    // other workloads are individually too short-lived to hard-fail on.
    let geomean = (speedups.iter().map(|(_, s)| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!("\nmatrix geomean speedup: {geomean:.2}x");
    if let Some(&(name, s)) = speedups.iter().find(|(n, _)| *n == "HACC-IO") {
        if s < 1.0 {
            failures.push(format!(
                "{name}: batched+parallel is SLOWER than the seed path ({s:.2}x)"
            ));
        }
    }
    if geomean < 1.0 {
        failures.push(format!(
            "batched+parallel regresses the matrix in geometric mean ({geomean:.2}x)"
        ));
    }
    let _ = writeln!(json, "  \"speedup_geomean\": {geomean:.4}");
    json.push_str("}\n");

    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    eprintln!("\nwrote BENCH_pipeline.json");
    opts.write_artifact("BENCH_pipeline.json", &json);

    if !failures.is_empty() {
        eprintln!("\nFAILURES:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
