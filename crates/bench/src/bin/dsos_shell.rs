//! A `dsos` command-line work-alike (Section II: "DSOS has a command
//! line interface for data interaction" used for "fast query testing
//! and data examination").
//!
//! Runs an instrumented job to populate a cluster, then executes a
//! small query script against it:
//!
//! ```text
//! cargo run -p repro-bench --bin dsos_shell -- --quick \
//!     query job_rank_time 259903 \
//!     query job_time_rank 259903 \
//!     count
//! ```
//!
//! Commands:
//! * `query <index> <job_id>` — print the first rows of the job under
//!   the given joint index;
//! * `count` — total stored objects;
//! * `schema` — print the `darshan_data` schema.

use darshan_ldms_connector::{darshan_schema, COLUMNS};
use dsos_sim::Value;
use iosim_apps::experiment::{run_job, Instrumentation, RunSpec};
use iosim_apps::platform::FsChoice;
use iosim_apps::workloads::MpiIoTest;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let app = if quick {
        MpiIoTest::tiny(false)
    } else {
        let mut a = MpiIoTest::paper_config(FsChoice::Lustre, false);
        a.nodes = 8;
        a.ranks_per_node = 8;
        a
    };
    eprintln!("populating DSOS from one instrumented MPI-IO-TEST run...");
    let spec =
        RunSpec::calm(FsChoice::Lustre, Instrumentation::connector_default()).with_store(true);
    let r = run_job(&app, &spec);
    let cluster = r.pipeline.as_ref().unwrap().cluster();
    eprintln!(
        "{} events stored across {} dsosd\n",
        r.messages,
        cluster.daemon_count()
    );

    let mut script: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| *a != "--quick")
        .collect();
    if script.is_empty() {
        script = vec!["schema", "count", "query", "job_rank_time", "259903"];
    }
    let mut i = 0;
    while i < script.len() {
        match script[i] {
            "schema" => {
                println!("schema darshan_data:");
                for (name, ty) in COLUMNS {
                    println!("  {name:<16} {ty:?}");
                }
                println!(
                    "indices: {}",
                    darshan_schema()
                        .indices()
                        .iter()
                        .map(|ix| ix.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                i += 1;
            }
            "count" => {
                println!("count: {}", cluster.object_count("darshan"));
                i += 1;
            }
            "query" => {
                let index = script.get(i + 1).expect("query needs <index> <job_id>");
                let job: u64 = script
                    .get(i + 2)
                    .expect("query needs <job_id>")
                    .parse()
                    .expect("numeric job id");
                let rows = cluster.query_prefix("darshan", index, &[Value::U64(job)]);
                println!("query {index} job={job}: {} rows; first 5:", rows.len());
                for row in rows.iter().take(5) {
                    let cells: Vec<String> = ["rank", "op", "seg_len", "seg_timestamp"]
                        .iter()
                        .map(|c| {
                            let idx = COLUMNS.iter().position(|&(n, _)| n == *c).unwrap();
                            format!("{}={}", c, row[idx])
                        })
                        .collect();
                    println!("  {}", cells.join("  "));
                }
                i += 3;
            }
            other => {
                eprintln!("unknown command {other}");
                std::process::exit(2);
            }
        }
    }
}
