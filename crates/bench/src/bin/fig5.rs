//! Regenerates Figure 5: mean occurrences of each I/O operation over
//! five HACC-IO jobs, with 95% confidence-interval error bars.

use hpcws_sim::{dashboard, figures};
use repro_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("running 5 HACC-IO jobs (Lustre) with the connector + DSOS store...");
    let runs = iosim_apps::figdata::hacc_figure_runs(5, opts.quick);
    let df = runs.frame();
    let occ = figures::op_occurrence(&df);
    let panel = dashboard::render_op_occurrence(
        "Figure 5 — mean I/O operation occurrences over 5 HACC-IO jobs (±95% CI)",
        &occ,
    );
    println!("{panel}");
    let csv = repro_bench::figcsv::fig5(&occ);
    println!("paper observation: the same application performs different amounts of");
    println!("I/O across identically-configured jobs — nonzero CI bars reproduce that.");
    opts.write_artifact("fig5.csv", &csv);
}
