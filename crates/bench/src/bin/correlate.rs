//! Correlating I/O performance with system behaviour — the analysis
//! the paper builds the whole integration for: "identify any
//! correlations between the file system, network congestion or resource
//! contentions and the I/O performance" (Section I).
//!
//! Runs the Figure 7–9 campaign, then correlates each job's binned mean
//! operation duration against the server-load telemetry (the congestion
//! profile a production LDMS deployment would capture with its system
//! samplers). The anomalous job correlates strongly; healthy jobs show
//! no relationship.

use hpcws_sim::figures;
use repro_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("running 5 MPI-IO-TEST jobs (Lustre, independent) with a storm in job 2...");
    let runs = iosim_apps::figdata::mpi_io_figure_runs(5, opts.quick);

    let mut csv = String::from("job,r\n");
    for (i, &job_id) in runs.job_ids.iter().enumerate() {
        let df = runs.job_frame(i);
        // Build the server-load series the system samplers would have
        // recorded: 1.0 nominal, the storm factor inside its window.
        let windows = &runs.congestion[i];
        let epoch0 = df
            .f64s("seg_timestamp")
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        let horizon = df.f64s("seg_timestamp").into_iter().fold(0.0f64, f64::max) - epoch0;
        // Sample at ~200 points across the job (a production sampler
        // would use a fixed interval; the jobs here span seconds at
        // --quick scale and ~15 minutes at paper scale).
        let step = (horizon / 200.0).max(1e-3);
        let telemetry: Vec<(f64, f64)> = (0..=200u64)
            .map(|k| {
                let t_rel = k as f64 * step;
                let t_abs = epoch0 + t_rel;
                let load = windows
                    .iter()
                    .filter(|w| t_abs >= w.start.as_secs_f64() && t_abs < w.end.as_secs_f64())
                    .map(|w| w.factor)
                    .fold(1.0, f64::max);
                (t_rel, load)
            })
            .collect();
        let c = figures::correlate_load(&df, &telemetry, 40);
        match c.r {
            Some(r) => {
                println!(
                    "job {job_id}: r = {r:+.3}{}",
                    if r > 0.5 {
                        "   <-- I/O slowness tracks server load"
                    } else {
                        ""
                    }
                );
                csv.push_str(&format!("{job_id},{r:.4}\n"));
            }
            None => {
                println!("job {job_id}: r undefined (no load variation — healthy job)");
                csv.push_str(&format!("{job_id},\n"));
            }
        }
    }
    println!(
        "\nThe anomalous job's operation durations correlate with the storm profile;\n\
         healthy jobs have constant load, so no correlation exists to find. With the\n\
         absolute timestamps the connector collects, this analysis runs while the\n\
         job is still executing."
    );
    opts.write_artifact("correlate.csv", &csv);
}
