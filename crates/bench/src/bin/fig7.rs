//! Regenerates Figure 7: read/write durations per rank per job for the
//! MPI-IO benchmark without collective operations; job 2 is anomalous.

use hpcws_sim::{dashboard, figures};
use repro_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("running 5 MPI-IO-TEST jobs (Lustre, independent) with congestion in job 2...");
    let runs = iosim_apps::figdata::mpi_io_figure_runs(5, opts.quick);
    let df = runs.frame();
    let rd = figures::per_rank_durations(&df);
    let panel = dashboard::render_rank_durations(
        "Figure 7 — per-rank read/write durations, 5 MPI-IO jobs (Lustre, independent)",
        &rd,
    );
    println!("{panel}");

    println!(
        "per-job mean durations (the paper: job 2 reads 6.75 s vs 0.05 s; writes 78 s vs 54 s):"
    );
    for op in ["read", "write"] {
        for (job, mean) in figures::job_mean_durations(&df, op) {
            println!("  job {job} mean {op} duration: {mean:.3} s");
        }
    }

    opts.write_artifact("fig7.csv", &repro_bench::figcsv::fig7(&rd));
}
