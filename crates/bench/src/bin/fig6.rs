//! Regenerates Figure 6: open/close operations per compute node for two
//! HACC-IO jobs (Lustre, 10M particles/rank).

use hpcws_sim::{dashboard, figures};
use repro_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("running 2 HACC-IO jobs (Lustre) with the connector + DSOS store...");
    let runs = iosim_apps::figdata::hacc_figure_runs(2, opts.quick);
    let df = runs.frame();
    let ops = figures::per_node_ops(&df, &["open", "close"]);
    let panel = dashboard::render_per_node_ops(
        "Figure 6 — open/close operations per node, two HACC-IO jobs",
        &ops,
    );
    println!("{panel}");
    opts.write_artifact("fig6.csv", &repro_bench::figcsv::fig6(&ops));
}
