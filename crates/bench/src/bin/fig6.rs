//! Regenerates Figure 6: open/close operations per compute node for two
//! HACC-IO jobs (Lustre, 10M particles/rank).

use hpcws_sim::{dashboard, figures};
use repro_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("running 2 HACC-IO jobs (Lustre) with the connector + DSOS store...");
    let runs = iosim_apps::figdata::hacc_figure_runs(2, opts.quick);
    let df = runs.frame();
    let ops = figures::per_node_ops(&df, &["open", "close"]);
    let panel = dashboard::render_per_node_ops(
        "Figure 6 — open/close operations per node, two HACC-IO jobs",
        &ops,
    );
    println!("{panel}");
    let mut csv = String::from("node,job,op,count\n");
    for o in &ops {
        csv.push_str(&format!("{},{},{},{}\n", o.node, o.job, o.op, o.count));
    }
    opts.write_artifact("fig6.csv", &csv);
}
