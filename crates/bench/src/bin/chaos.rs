//! `chaos` CLI: seeded crash/failover drills over the HACC-IO pipeline.
//!
//! ```text
//! chaos [--json] [--seed N] <crash-compute|crash-aggregator|crash-store|flapping-link|storm>
//! ```
//!
//! Each scenario runs HACC-IO through the crash-tolerant deployment
//! (reliable retry queues, durable write-ahead logs, standby L1
//! aggregator) and injects one class of fault at a seed-derived virtual
//! instant:
//!
//! - `crash-compute`: a compute-node sampler daemon crash-stops mid-run;
//! - `crash-aggregator`: the head-node aggregator crash-stops while the
//!   store-side aggregator rides out an outage of its own — the full
//!   WAL-replay + heartbeat-failover acceptance scenario;
//! - `crash-store`: the store-side aggregator itself crash-stops;
//! - `flapping-link`: the head node's uplink flaps three times;
//! - `storm`: a 16×-oversubscribed HMMER burst through the overload
//!   controller, with a seed-placed link outage overlapping the storm.
//!   Passes only if the ledger balances exactly, nothing is silently
//!   dropped, the sampler actually degraded into sketches, and every
//!   metadata (open/close) event was delivered individually.
//! - `crash-dsosd`: a storage backend (`dsosd-0`) crash-stops mid-run
//!   and restarts 20 virtual seconds later. With `--replicas 2` the
//!   drill passes only if the completeness report proves zero
//!   acknowledged-row loss, zero duplicates, and the anti-entropy pass
//!   actually rebuilt rows; with `--replicas 1` it passes only if the
//!   provably-unavailable mass exactly balances the ledger's
//!   acknowledged count.
//!
//! The drill emits a recovery report (WAL replays, failover latency in
//! virtual time, suppressed duplicates) and the ledger accounting.
//!
//! Exit status: 0 when the delivery ledger balances exactly after the
//! drill (every loss attributed to one `(hop, cause)` bucket), 1 when
//! it does not, 2 on usage errors.

use darshan_ldms_connector::{
    column_id, DeliveryMode, FaultScript, OverloadConfig, Pipeline, QueueConfig, TelemetryConfig,
    WalConfig,
};
use dsos_sim::Value;
use iosim_apps::workloads::{HaccIo, Hmmer};
use iosim_apps::{run_job, FsChoice, Instrumentation, RunSpec};
use iosim_time::{Epoch, SimDuration};
use iosim_util::JsonWriter;
use ldms_sim::SimRng;
use std::process::ExitCode;

const USAGE: &str = "usage: chaos [--json] [--seed N] [--replicas R] \
     <crash-compute|crash-aggregator|crash-store|crash-dsosd|flapping-link|storm>";

const SCENARIOS: [&str; 6] = [
    "crash-compute",
    "crash-aggregator",
    "crash-store",
    "crash-dsosd",
    "flapping-link",
    "storm",
];

struct Cli {
    json: bool,
    seed: u64,
    replicas: usize,
    scenario: String,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut json = false;
    let mut seed = 0u64;
    let mut replicas = 2usize;
    let mut scenario: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--replicas" => {
                let v = it.next().ok_or("--replicas needs a value")?;
                replicas = v
                    .parse()
                    .ok()
                    .filter(|&r| r >= 1)
                    .ok_or(format!("bad replicas `{v}` (want >= 1)"))?;
            }
            // `--chaos <scenario>` is accepted as an alias for the
            // positional form, so `repro-bench --chaos crash-store`
            // reads naturally in CI scripts.
            "--chaos" => scenario = Some(it.next().ok_or("--chaos needs a scenario")?.clone()),
            "-h" | "--help" => return Err(USAGE.to_string()),
            other if !other.starts_with('-') => scenario = Some(other.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let scenario = scenario.ok_or(USAGE)?;
    if !SCENARIOS.contains(&scenario.as_str()) {
        return Err(format!("unknown scenario `{scenario}`\n{USAGE}"));
    }
    Ok(Cli {
        json,
        seed,
        replicas,
        scenario,
    })
}

/// The crash-tolerant deployment every drill runs against.
fn spec(faults: FaultScript) -> RunSpec {
    RunSpec::calm(FsChoice::Lustre, Instrumentation::connector_default())
        .with_store(true)
        .with_queue(QueueConfig::reliable())
        .with_standby(true)
        .with_wal(WalConfig::durable())
        // Metrics + flight recorders on every drill: a failed drill
        // dumps the crashed daemon's last actions instead of just an
        // unbalanced ledger.
        .with_telemetry(TelemetryConfig::metrics_only())
        .with_faults(faults)
}

/// Builds the scenario's fault script from the fault-free runtime: the
/// seed perturbs where inside the run the fault lands.
fn script(scenario: &str, seed: u64, epoch: Epoch, runtime_s: f64) -> FaultScript {
    let mut rng = SimRng::new(seed ^ 0xC4A0_5EED);
    let runtime = SimDuration::from_secs_f64(runtime_s);
    // A seed-derived instant 20–60% into the run.
    let mut mid = || epoch + SimDuration::from_secs_f64(runtime_s * (0.2 + 0.4 * rng.next_f64()));
    match scenario {
        "crash-compute" => {
            let at = mid();
            FaultScript::new().crash("nid00040", at, at + SimDuration::from_secs(5))
        }
        "crash-aggregator" => {
            // L2 is out from job start until past job end, so the head
            // node's WAL fills; the head node crash-stops mid-run and
            // restarts only after L2 is back.
            let l2_up = epoch + runtime + SimDuration::from_secs(5);
            let restart = epoch + runtime + SimDuration::from_secs(10);
            FaultScript::new()
                .daemon_outage("l2", epoch, l2_up)
                .crash("l1", mid(), restart)
        }
        "crash-store" => {
            let at = mid();
            FaultScript::new().crash("l2", at, epoch + runtime + SimDuration::from_secs(5))
        }
        "flapping-link" => {
            let mut script = FaultScript::new();
            for _ in 0..3 {
                let from = mid();
                script = script.link_flap("l1", from, from + SimDuration::from_millis(200));
            }
            script
        }
        _ => unreachable!("scenario validated in parse_args"),
    }
}

/// Stored rows of the drill job whose `op` is a metadata event.
fn meta_rows(p: &Pipeline, job_id: u64) -> u64 {
    p.events_of_job(job_id)
        .iter()
        .filter(
            |row| matches!(&row[column_id("op")], Value::Str(op) if op == "open" || op == "close"),
        )
        .count() as u64
}

/// The `storm` drill: an HMMER burst offered at 16× the overload
/// controller's service rate, with a seed-placed link outage landing
/// mid-storm. The probe run (fault-free, no controller) calibrates the
/// offered rate and the expected metadata-row count.
fn storm_drill(cli: &Cli) -> ExitCode {
    let app = Hmmer {
        ranks: 8,
        families: 200,
        sequences: 4_000,
        ..Hmmer::tiny()
    };
    let base_spec = || {
        RunSpec::calm(FsChoice::Lustre, Instrumentation::connector_default())
            .with_store(true)
            .with_delivery(DeliveryMode::Deferred)
            .with_queue(QueueConfig::reliable().with_capacity(4096))
            .with_wal(WalConfig::durable())
            .with_telemetry(TelemetryConfig::metrics_only())
    };
    let probe = run_job(&app, &base_spec());
    let job_id = base_spec().job_id;
    let meta_expected = meta_rows(probe.pipeline.as_ref().expect("probe pipeline"), job_id);
    let offered = probe.msg_rate;

    // Seed-placed outage: the head node's uplink drops for 200–600 ms
    // somewhere 20–60% into the run, overlapping the burst so the
    // controller degrades while the retry path is also exercised.
    let mut rng = SimRng::new(cli.seed ^ 0x5707_4A11);
    let epoch = base_spec().epoch_base;
    let from = epoch + SimDuration::from_secs_f64(probe.runtime_s * (0.2 + 0.4 * rng.next_f64()));
    let until = from + SimDuration::from_millis(200 + rng.next_u64() % 400);
    let faults = FaultScript::new().link_flap("l1", from, until);

    let r = run_job(
        &app,
        &base_spec()
            .with_overload(OverloadConfig::for_rate(offered / 16.0))
            .with_faults(faults),
    );
    let p = r.pipeline.as_ref().expect("connector run has a pipeline");
    let stored = p.stored_events() as u64;
    let meta_stored = meta_rows(p, job_id);
    let balanced = p.ledger().balances();
    let max_depth = p
        .network()
        .overload_stats()
        .iter()
        .map(|(_, s)| s.max_depth)
        .fold(0.0f64, f64::max);

    let mut failures: Vec<String> = Vec::new();
    if !balanced {
        failures.push("ledger does not balance".to_string());
    }
    if r.messages_lost != 0 {
        failures.push(format!(
            "{} messages silently dropped (outage must drain through the retry path)",
            r.messages_lost
        ));
    }
    if r.messages_summarized == 0 {
        failures.push("16x oversubscription never degraded into sketches".to_string());
    }
    if stored + r.messages_lost + r.messages_summarized != r.messages {
        failures.push(format!(
            "coverage hole: stored {} + lost {} + summarized {} != published {}",
            stored, r.messages_lost, r.messages_summarized, r.messages
        ));
    }
    if meta_stored != meta_expected {
        failures.push(format!(
            "metadata events not delivered individually: stored {meta_stored}, expected {meta_expected}"
        ));
    }

    if cli.json {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("scenario", "storm");
        w.field_uint("seed", cli.seed);
        w.field_float("offered_rate", offered);
        w.field_float("service_rate", offered / 16.0);
        w.field_uint("published", r.messages);
        w.field_uint("stored", stored);
        w.field_uint("summarized", r.messages_summarized);
        w.field_uint("lost", r.messages_lost);
        w.field_float("accuracy", r.accuracy);
        w.field_uint("balanced", u64::from(balanced));
        w.field_uint("meta_expected", meta_expected);
        w.field_uint("meta_stored", meta_stored);
        w.field_float("max_overload_depth", max_depth);
        w.field_uint("summary_sketches", p.stored_summaries() as u64);
        // Parked-then-journaled frames: varies with the seed-placed
        // outage window, showing the retry path was exercised.
        w.field_uint("wal_appended", r.recovery.wal_appended);
        w.field_uint("passed", u64::from(failures.is_empty()));
        w.end_object();
        println!("{}", w.as_str());
    } else {
        println!("== chaos drill: storm (seed {})", cli.seed);
        println!(
            "offered {:.0} msg/s against a {:.0} msg/s controller (16x oversubscribed)",
            offered,
            offered / 16.0
        );
        println!(
            "published={} stored={} summarized={} lost={} accuracy={:.4} balanced={}",
            r.messages, stored, r.messages_summarized, r.messages_lost, r.accuracy, balanced
        );
        println!(
            "metadata: {meta_stored}/{meta_expected} delivered individually; peak modeled backlog {max_depth:.0} msgs"
        );
        println!("ledger: {}", p.ledger().summary());
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("\nstorm drill FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        ExitCode::from(1)
    }
}

/// The `crash-dsosd` drill: HACC-IO against a 4-backend DSOS cluster
/// with `--replicas` copies per row (write quorum 1), `dsosd-0`
/// crash-stopping at a seed-derived mid-run instant and restarting 20
/// virtual seconds later. The LDMS tier stays fault-free so every
/// discrepancy is attributable to the storage tier.
fn crash_dsosd_drill(cli: &Cli) -> ExitCode {
    let app = HaccIo::tiny();
    let base_spec = || {
        let mut s = RunSpec::calm(FsChoice::Lustre, Instrumentation::connector_default())
            .with_store(true)
            .with_replication(cli.replicas)
            .with_write_quorum(1)
            .with_telemetry(TelemetryConfig::metrics_only());
        s.dsosd = 4;
        s
    };
    // Probe run: fault-free runtime places the crash window mid-run.
    let probe = run_job(&app, &base_spec());
    let mut rng = SimRng::new(cli.seed ^ 0xD505_D0D0);
    let epoch = base_spec().epoch_base;
    let crash_at =
        epoch + SimDuration::from_secs_f64(probe.runtime_s * (0.2 + 0.4 * rng.next_f64()));
    let restart_at = crash_at + SimDuration::from_secs(20);
    let faults = FaultScript::new()
        .crash_dsosd("dsosd-0", crash_at)
        .restart_dsosd("dsosd-0", restart_at);

    let r = run_job(&app, &base_spec().with_faults(faults));
    let p = r.pipeline.as_ref().expect("connector run has a pipeline");
    let c = r
        .completeness
        .as_ref()
        .expect("stored run has completeness");
    let stored = p.stored_events() as u64;
    let acked = p.ledger().store_acked();
    let rebuilt = p.cluster().rebuild_count();
    let balanced = p.ledger().balances();

    let mut failures: Vec<String> = Vec::new();
    if !balanced {
        failures.push("delivery ledger does not balance".to_string());
    }
    if c.acked_rows != acked {
        failures.push(format!(
            "completeness acked {} != ledger store_acked {acked}",
            c.acked_rows
        ));
    }
    if stored + c.unavailable != c.acked_rows {
        failures.push(format!(
            "accounting hole: stored {stored} + unavailable {} != acked {}",
            c.unavailable, c.acked_rows
        ));
    }
    if cli.replicas >= 2 {
        // One crash against R >= 2: the report must prove zero
        // acknowledged-row loss, every published row queryable exactly
        // once, and the anti-entropy pass must actually have rebuilt.
        if !c.is_complete() {
            failures.push(format!(
                "R={} must survive one dsosd crash, but {} acked row(s) are unavailable",
                cli.replicas, c.unavailable
            ));
        }
        if c.acked_rows != r.messages {
            failures.push(format!(
                "every published row must be quorum-acked: acked {} != published {}",
                c.acked_rows, r.messages
            ));
        }
        if stored != r.messages {
            failures.push(format!(
                "post-recovery query must return every row exactly once: stored {stored}, \
                 published {}",
                r.messages
            ));
        }
        if rebuilt == 0 {
            failures.push("anti-entropy rebuilt nothing; the crash window missed the run".into());
        }
    } else {
        // Unreplicated: the crashed backend's pre-crash mass must be
        // reported as provably unavailable — no silent loss.
        if c.unavailable == 0 {
            failures
                .push("R=1 with a mid-run dsosd crash must report unavailable mass".to_string());
        }
        if rebuilt != 0 {
            failures.push(format!(
                "nothing can be rebuilt without a peer replica, yet rebuild_rows={rebuilt}"
            ));
        }
    }

    if cli.json {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("scenario", "crash-dsosd");
        w.field_uint("seed", cli.seed);
        w.field_uint("replicas", cli.replicas as u64);
        w.field_uint("published", r.messages);
        w.field_uint("stored", stored);
        w.field_uint("acked", c.acked_rows);
        w.field_uint("unavailable", c.unavailable);
        w.field_uint("dead_daemons", c.dead_daemons as u64);
        w.field_uint("duplicates_suppressed", c.duplicates_suppressed);
        w.field_uint("read_repairs", p.cluster().read_repair_count());
        w.field_uint("rebuild_rows", rebuilt);
        w.field_uint("balanced", u64::from(balanced));
        w.field_uint("passed", u64::from(failures.is_empty()));
        w.end_object();
        println!("{}", w.as_str());
    } else {
        println!(
            "== chaos drill: crash-dsosd (seed {}, R={})",
            cli.seed, cli.replicas
        );
        println!(
            "published={} stored={} acked={} unavailable={} rebuild_rows={rebuilt} balanced={balanced}",
            r.messages, stored, c.acked_rows, c.unavailable
        );
        println!("ledger: {}", p.ledger().summary());
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("\ncrash-dsosd drill FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if cli.scenario == "storm" {
        return storm_drill(&cli);
    }
    if cli.scenario == "crash-dsosd" {
        return crash_dsosd_drill(&cli);
    }

    let app = HaccIo::tiny();
    // Probe run: the publish schedule is application-driven, so the
    // fault-free runtime tells the script where "mid-run" lies.
    let probe = run_job(&app, &spec(FaultScript::new()));
    let epoch = spec(FaultScript::new()).epoch_base;
    let faults = script(&cli.scenario, cli.seed, epoch, probe.runtime_s);

    let r = run_job(&app, &spec(faults));
    let p = r.pipeline.as_ref().expect("connector run has a pipeline");
    let stored = p.stored_events() as u64;
    let balanced = p.ledger().balances();
    let rec = &r.recovery;

    if cli.json {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("scenario", &cli.scenario);
        w.field_uint("seed", cli.seed);
        w.field_uint("published", r.messages);
        w.field_uint("stored", stored);
        w.field_uint("lost", r.messages_lost);
        w.field_uint("balanced", u64::from(balanced));
        w.field_uint("crashes", rec.crashes);
        w.field_uint("wal_appended", rec.wal_appended);
        w.field_uint("wal_replayed", rec.wal_replayed);
        w.field_uint("wal_dropped_unsynced", rec.wal_dropped_unsynced);
        w.field_uint("wal_rejected", rec.wal_rejected);
        w.field_uint("lost_crash", rec.lost_crash);
        w.field_uint("recovered", rec.recovered);
        w.field_uint("duplicates_suppressed", rec.duplicates_suppressed);
        w.field_uint("failovers", rec.failovers);
        w.field_uint("failbacks", rec.failbacks);
        w.field_float("max_failover_latency_s", rec.max_failover_latency_s);
        w.end_object();
        println!("{}", w.as_str());
    } else {
        println!("== chaos drill: {} (seed {})", cli.scenario, cli.seed);
        println!(
            "published={} stored={} lost={} balanced={}",
            r.messages, stored, r.messages_lost, balanced
        );
        println!("{}", rec.summary());
        println!("ledger: {}", p.ledger().summary());
    }

    if balanced {
        ExitCode::SUCCESS
    } else {
        // Post-mortem: dump each crashed daemon's flight recorder so
        // the failing drill is diagnosable from the CI log alone.
        eprintln!("\nledger did not balance; crash flight recorders:");
        if rec.crash_dumps.is_empty() {
            eprintln!("  (no crash-stop fault fired — imbalance is elsewhere)");
        }
        for dump in &rec.crash_dumps {
            eprintln!("{}", dump.render());
        }
        ExitCode::from(1)
    }
}
