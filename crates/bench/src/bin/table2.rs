//! Regenerates Table II (a, b, c) of the paper.
//!
//! ```text
//! cargo run --release -p repro-bench --bin table2 [-- --quick] [-- --part a|b|c]
//! ```

use iosim_apps::table2::{self, CampaignOptions};
use repro_bench::{paper, HarnessOpts};

fn main() {
    // `--part a|b|c` is parsed locally; `--quick` / `--out DIR` follow
    // the shared harness conventions.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let part: Option<char> = argv
        .iter()
        .position(|a| a == "--part")
        .and_then(|i| argv.get(i + 1))
        .and_then(|p| p.chars().next())
        .map(|c| c.to_ascii_lowercase());
    let opts = HarnessOpts {
        quick: argv.iter().any(|a| a == "--quick"),
        out: argv
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| argv.get(i + 1))
            .map(std::path::PathBuf::from),
    };

    let scale = opts.scale();
    let campaign = CampaignOptions::default();

    let run_part = |p: char| match p {
        'a' => {
            eprintln!("running Table IIa campaigns (MPI-IO-TEST, 4 configs x 10 runs)...");
            let results = table2::table2a(scale, &campaign);
            let text = table2::render("Table IIa — MPI-IO-TEST", &results);
            println!("{text}");
            println!("{}", paper::reference_block(&paper::TABLE2A));
            opts.write_artifact("table2a.txt", &text);
        }
        'b' => {
            eprintln!("running Table IIb campaigns (HACC-IO, 4 configs x 10 runs)...");
            let results = table2::table2b(scale, &campaign);
            let text = table2::render("Table IIb — HACC-IO", &results);
            println!("{text}");
            println!("{}", paper::reference_block(&paper::TABLE2B));
            opts.write_artifact("table2b.txt", &text);
        }
        'c' => {
            eprintln!("running Table IIc campaigns (HMMER + no-format ablation)...");
            let results = table2::table2c(scale, &campaign);
            let text = table2::render("Table IIc — HMMER", &results);
            println!("{text}");
            println!("{}", paper::reference_block(&paper::TABLE2C));
            println!(
                "paper no-format ablation overhead: {:+.2}%\n",
                paper::NOFORMAT_OVERHEAD_PCT
            );
            opts.write_artifact("table2c.txt", &text);
        }
        other => {
            eprintln!("unknown part '{other}' (expected a, b, or c)");
            std::process::exit(2);
        }
    };

    match part {
        Some(p) => run_part(p),
        None => {
            for p in ['a', 'b', 'c'] {
                run_part(p);
            }
        }
    }
}
