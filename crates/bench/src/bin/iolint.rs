//! `iolint` CLI: static topology validation, whole-pipeline flow
//! analysis, and stored-trace linting.
//!
//! ```text
//! iolint [--format text|table|json] [-A CODE] [-W CODE] [-D CODE] topo <conf-file>...
//! iolint [--format ...] [--storm N] [--duration S] analyze <conf-file>...
//! iolint [--format ...] [-A CODE] [-W CODE] [-D CODE] trace <csv-file>...
//! ```
//!
//! `topo` lints declarative topology conf files (see the `iolint`
//! crate docs for the format); `analyze` additionally runs the flow
//! solver — an abstract interpretation of the runtime's fluid model —
//! and prints the per-hop worst-case bound table plus the network
//! verdict (FLOW001–FLOW004 fire from the solver; the pre-solver
//! heuristics downgrade to advisories). `trace` lints Figure 3 CSV
//! exports (24 columns in schema order, optional header row).
//! `-A`/`-W`/`-D` re-level a lint by code (`TOP004`) or name
//! (`missing-subscriber`). `--storm`/`--duration` override the conf's
//! `workload` directive for what-if sweeps.
//!
//! A conf that fails to parse renders as a `CONF001` diagnostic with
//! the offending line, in whichever output format was selected.
//!
//! Exit status: 0 when every file is clean or carries only warnings,
//! 1 when any error-severity diagnostic fires, 2 on usage or I/O
//! errors. (`--json` / `--table` remain accepted as aliases for
//! `--format json` / `--format table`.)

use darshan_ldms_connector::COLUMNS;
use iolint::{
    check_flow, check_topology, check_trace, effective_workload, parse_conf, ConfError, Diagnostic,
    LintConfig, Report, TraceEvent, TraceLintOpts,
};
use std::process::ExitCode;

const USAGE: &str = "usage: iolint [--format text|table|json] [-A CODE] [-W CODE] [-D CODE] \
                     [--storm N] [--duration S] <topo|analyze|trace> <file>...";

enum Output {
    Text,
    Table,
    Json,
}

struct Cli {
    output: Output,
    config: LintConfig,
    mode: String,
    files: Vec<String>,
    storm: Option<f64>,
    duration: Option<f64>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut output = Output::Text;
    let mut config = LintConfig::new();
    let mut rest = Vec::new();
    let mut storm = None;
    let mut duration = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => output = Output::Json,
            "--table" => output = Output::Table,
            "--format" => {
                let f = it.next().ok_or("--format needs text|table|json")?;
                output = match f.as_str() {
                    "text" => Output::Text,
                    "table" => Output::Table,
                    "json" => Output::Json,
                    other => return Err(format!("unknown format `{other}` (text|table|json)")),
                };
            }
            "--storm" => {
                let v = it.next().ok_or("--storm needs a multiplier")?;
                storm = Some(v.parse::<f64>().map_err(|_| format!("bad --storm: {v}"))?);
            }
            "--duration" => {
                let v = it.next().ok_or("--duration needs seconds")?;
                duration = Some(
                    v.parse::<f64>()
                        .map_err(|_| format!("bad --duration: {v}"))?,
                );
            }
            "-A" | "--allow" | "-W" | "--warn" | "-D" | "--deny" => {
                let code = it.next().ok_or_else(|| format!("{a} needs a lint code"))?;
                let level = match a.as_str() {
                    "-A" | "--allow" => iolint::LintLevel::Allow,
                    "-W" | "--warn" => iolint::LintLevel::Warn,
                    _ => iolint::LintLevel::Deny,
                };
                config.set(code, level)?;
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => rest.push(other.to_string()),
        }
    }
    let (mode, files) = rest
        .split_first()
        .ok_or_else(|| USAGE.to_string())
        .map(|(m, f)| (m.clone(), f.to_vec()))?;
    if mode != "topo" && mode != "trace" && mode != "analyze" {
        return Err(format!("unknown mode `{mode}`\n{USAGE}"));
    }
    if files.is_empty() {
        return Err(format!("no input files\n{USAGE}"));
    }
    Ok(Cli {
        output,
        config,
        mode,
        files,
        storm,
        duration,
    })
}

/// Decodes one trace CSV: 24 fields per row in `COLUMNS` order, with
/// an optional header row. Returns `(line, reason)` on failure.
fn read_trace_csv(text: &str) -> Result<Vec<TraceEvent>, (usize, String)> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = iosim_util::csv::decode_row(line);
        if i == 0 && fields.first().map(String::as_str) == Some(COLUMNS[0].0) {
            continue; // header row
        }
        match TraceEvent::from_csv_fields(&fields) {
            Some(e) => events.push(e),
            None => {
                return Err((
                    i + 1,
                    format!(
                        "expected {} typed fields in schema order, got {}",
                        COLUMNS.len(),
                        fields.len()
                    ),
                ))
            }
        }
    }
    Ok(events)
}

/// A parse failure rendered through the normal diagnostic pipeline, so
/// `--format json` consumers never have to scrape stderr.
fn conf_error_report(e: &ConfError, config: &LintConfig) -> Report {
    let d = Diagnostic::new(&iolint::diag::CONF001, "conf", e.msg.clone())
        .with_line(e.line)
        .with_help("fix the conf syntax; no other lint can run until it parses");
    Report::new(vec![d], config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut any_error = false;
    for file in &cli.files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("iolint: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let mut flow_rendering: Option<String> = None;
        let report = match cli.mode.as_str() {
            "topo" => match parse_conf(&text) {
                Ok(spec) => check_topology(&spec, &cli.config),
                Err(e) => conf_error_report(&e, &cli.config),
            },
            "analyze" => match parse_conf(&text) {
                Ok(spec) => {
                    let mut w = effective_workload(&spec);
                    if let Some(s) = cli.storm {
                        w.storm = s.max(0.0);
                    }
                    if let Some(d) = cli.duration {
                        w.duration_s = d.max(0.0);
                    }
                    let (report, flow) = check_flow(&spec, Some(&w), &cli.config);
                    flow_rendering = Some(match cli.output {
                        Output::Json => flow.render_json(),
                        _ => flow.render_table(),
                    });
                    report
                }
                Err(e) => conf_error_report(&e, &cli.config),
            },
            _ => match read_trace_csv(&text) {
                Ok(events) => check_trace(&events, &TraceLintOpts::default(), &cli.config),
                Err((line, msg)) => {
                    eprintln!("iolint: {file}:{line}: {msg}");
                    return ExitCode::from(2);
                }
            },
        };
        any_error |= report.has_errors();
        match cli.output {
            Output::Json => match flow_rendering {
                // One object per file: {"flow": ..., "report": ...}.
                Some(flow) => println!("{{\"flow\":{flow},\"report\":{}}}", report.render_json()),
                None => println!("{}", report.render_json()),
            },
            Output::Table => {
                println!("== {file}");
                if let Some(flow) = &flow_rendering {
                    print!("{flow}");
                }
                print!("{}", report.render_table());
            }
            Output::Text => {
                println!("== {file}");
                if let Some(flow) = &flow_rendering {
                    print!("{flow}");
                }
                print!("{}", report.render_text());
            }
        }
    }
    if any_error {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
