//! `iolint` CLI: static topology validation and stored-trace linting.
//!
//! ```text
//! iolint [--json|--table] [-A CODE] [-W CODE] [-D CODE] topo <conf-file>...
//! iolint [--json|--table] [-A CODE] [-W CODE] [-D CODE] trace <csv-file>...
//! ```
//!
//! `topo` lints declarative topology conf files (see the `iolint`
//! crate docs for the format); `trace` lints Figure 3 CSV exports (24
//! columns in schema order, optional header row). `-A`/`-W`/`-D`
//! re-level a lint by code (`TOP004`) or name (`missing-subscriber`).
//!
//! Exit status: 0 when every file is clean or carries only warnings,
//! 1 when any error-severity diagnostic fires, 2 on usage, I/O, or
//! parse errors.

use darshan_ldms_connector::COLUMNS;
use iolint::{check_topology, check_trace, parse_conf, LintConfig, TraceEvent, TraceLintOpts};
use std::process::ExitCode;

const USAGE: &str =
    "usage: iolint [--json|--table] [-A CODE] [-W CODE] [-D CODE] <topo|trace> <file>...";

enum Output {
    Text,
    Table,
    Json,
}

struct Cli {
    output: Output,
    config: LintConfig,
    mode: String,
    files: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut output = Output::Text;
    let mut config = LintConfig::new();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => output = Output::Json,
            "--table" => output = Output::Table,
            "-A" | "--allow" | "-W" | "--warn" | "-D" | "--deny" => {
                let code = it.next().ok_or_else(|| format!("{a} needs a lint code"))?;
                let level = match a.as_str() {
                    "-A" | "--allow" => iolint::LintLevel::Allow,
                    "-W" | "--warn" => iolint::LintLevel::Warn,
                    _ => iolint::LintLevel::Deny,
                };
                config.set(code, level)?;
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => rest.push(other.to_string()),
        }
    }
    let (mode, files) = rest
        .split_first()
        .ok_or_else(|| USAGE.to_string())
        .map(|(m, f)| (m.clone(), f.to_vec()))?;
    if mode != "topo" && mode != "trace" {
        return Err(format!("unknown mode `{mode}`\n{USAGE}"));
    }
    if files.is_empty() {
        return Err(format!("no input files\n{USAGE}"));
    }
    Ok(Cli {
        output,
        config,
        mode,
        files,
    })
}

/// Decodes one trace CSV: 24 fields per row in `COLUMNS` order, with
/// an optional header row. Returns `(line, reason)` on failure.
fn read_trace_csv(text: &str) -> Result<Vec<TraceEvent>, (usize, String)> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = iosim_util::csv::decode_row(line);
        if i == 0 && fields.first().map(String::as_str) == Some(COLUMNS[0].0) {
            continue; // header row
        }
        match TraceEvent::from_csv_fields(&fields) {
            Some(e) => events.push(e),
            None => {
                return Err((
                    i + 1,
                    format!(
                        "expected {} typed fields in schema order, got {}",
                        COLUMNS.len(),
                        fields.len()
                    ),
                ))
            }
        }
    }
    Ok(events)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut any_error = false;
    for file in &cli.files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("iolint: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let report = if cli.mode == "topo" {
            match parse_conf(&text) {
                Ok(spec) => check_topology(&spec, &cli.config),
                Err(e) => {
                    eprintln!("iolint: {file}: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            match read_trace_csv(&text) {
                Ok(events) => check_trace(&events, &TraceLintOpts::default(), &cli.config),
                Err((line, msg)) => {
                    eprintln!("iolint: {file}:{line}: {msg}");
                    return ExitCode::from(2);
                }
            }
        };
        any_error |= report.has_errors();
        match cli.output {
            Output::Json => println!("{}", report.render_json()),
            Output::Table => {
                println!("== {file}");
                print!("{}", report.render_table());
            }
            Output::Text => {
                println!("== {file}");
                print!("{}", report.render_text());
            }
        }
    }
    if any_error {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
