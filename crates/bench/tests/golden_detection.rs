//! Golden-file tests for the online detection reports.
//!
//! Detection output is part of the published interface: operators diff
//! reports across runs, and CI archives them. The whole stack is
//! virtual-time deterministic, so a fixed-seed campaign must
//! reproduce its detection report byte-for-byte — any change to the
//! detector's thresholds, window phasing, onset refinement, or CSV
//! formatting that shifts a single byte is caught here.
//!
//! To regenerate after an intentional change:
//! `UPDATE_GOLDENS=1 cargo test -p repro-bench --test golden_detection`

use hpcws_sim::online::{report_csv, OnlineDetector, OnlineEvent};
use hpcws_sim::{AnomalyKind, DetectionConfig};
use iosim_apps::detect::row_to_event;
use repro_suite::scenario;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; run with UPDATE_GOLDENS=1 if intentional"
    );
}

/// Replays every stored row of the figure campaign through one
/// fleet-wide detector. Cross-job baselines catch what no single run
/// can: job 302's reads are *uniformly* slow (its own read history
/// never looks anomalous to itself), but against the fleet's cached
/// sub-millisecond reads they are an outlier from the first judged
/// window.
fn fleet_detections(runs: &iosim_apps::figdata::FigureRuns) -> Vec<hpcws_sim::DiagnosticEvent> {
    let mut events: Vec<OnlineEvent> = Vec::new();
    for (&job_id, r) in runs.job_ids.iter().zip(&runs.results) {
        let p = r.pipeline.as_ref().expect("figure runs store events");
        events.extend(
            p.events_of_job(job_id)
                .iter()
                .filter_map(|r| row_to_event(r)),
        );
    }
    events.sort_by(|a, b| {
        a.end
            .total_cmp(&b.end)
            .then_with(|| a.job_id.cmp(&b.job_id))
            .then_with(|| a.rank.cmp(&b.rank))
            .then_with(|| a.op.cmp(&b.op))
            .then_with(|| a.file.cmp(&b.file))
            .then_with(|| a.len.cmp(&b.len))
            .then_with(|| a.off.cmp(&b.off))
    });
    // Fleet windows are sized so job 302's storm reads (~145 ms each)
    // still land several per window, while the two calm jobs that ran
    // before it each contribute a cached-read window to the fleet
    // baseline — hence the warm-up floor of two windows here.
    let cfg = DetectionConfig {
        baseline_min_windows: 2,
        ..DetectionConfig::default().with_window_s(0.05)
    };
    let mut det = OnlineDetector::new(cfg);
    for e in &events {
        det.observe(e);
    }
    det.finish()
}

#[test]
fn mpi_io_detection_reports_are_byte_stable() {
    // The Figure 7–9 campaign (job 2 carries the injected congestion
    // anomaly) runs with live detection on every job.
    let runs = iosim_apps::figdata::mpi_io_figure_runs(4, true);

    // Per-run (live) detections, jobs in execution order: the write
    // slowdown is caught in flight by each job's own detector.
    let live: Vec<hpcws_sim::DiagnosticEvent> = runs
        .results
        .iter()
        .flat_map(|r| r.detections.iter().cloned())
        .collect();
    assert!(
        live.iter()
            .any(|d| d.job_id == 302 && d.kind == AnomalyKind::DurationOutlier && d.op == "write"),
        "job 302's live write slowdown missing: {live:?}"
    );
    check("detection_jobs_quick.csv", &report_csv(&live));

    // The fleet pass flags the read anomaly the per-run detectors
    // structurally cannot see.
    let fleet = fleet_detections(&runs);
    assert!(
        fleet
            .iter()
            .any(|d| d.job_id == 302 && d.kind == AnomalyKind::DurationOutlier && d.op == "read"),
        "job 302's reads must be a fleet-level outlier: {fleet:?}"
    );
    assert!(
        fleet.iter().all(|d| d.job_id == 302),
        "calm jobs must stay clean in the fleet pass: {fleet:?}"
    );
    check("detection_fleet_quick.csv", &report_csv(&fleet));
}

#[test]
fn scenario_corpus_report_is_byte_stable() {
    let mut all = Vec::new();
    for sc in scenario::corpus(1) {
        let mut det = OnlineDetector::new(DetectionConfig::default());
        for e in &sc.events {
            det.observe(e);
        }
        all.extend(det.finish());
    }
    assert!(!all.is_empty(), "the labeled corpus must trip the detector");
    check("detection_corpus.csv", &report_csv(&all));
}
