//! Golden-file tests for the Figure 5–9 CSV artifacts.
//!
//! The whole stack is virtual-time deterministic: a fixed-seed figure
//! run must reproduce its CSV byte-for-byte, on any machine, every
//! time. These tests pin the quick-mode CSVs against checked-in
//! goldens, so any change to the simulation, the connector hot path
//! (batching, deferred delivery), the store, or the CSV formatting
//! that shifts a single byte of published figure data is caught in
//! `cargo test`.
//!
//! To regenerate after an intentional change:
//! `UPDATE_GOLDENS=1 cargo test -p repro-bench --test golden_figures`

use hpcws_sim::figures;
use repro_bench::figcsv;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; run with UPDATE_GOLDENS=1 if intentional"
    );
}

#[test]
fn hacc_figure_csvs_are_byte_stable() {
    // Figure 5 aggregates five HACC-IO jobs; Figure 6 plots two.
    let runs5 = iosim_apps::figdata::hacc_figure_runs(5, true);
    let df5 = runs5.frame();
    check(
        "fig5_quick.csv",
        &figcsv::fig5(&figures::op_occurrence(&df5)),
    );

    let runs2 = iosim_apps::figdata::hacc_figure_runs(2, true);
    let df2 = runs2.frame();
    check(
        "fig6_quick.csv",
        &figcsv::fig6(&figures::per_node_ops(&df2, &["open", "close"])),
    );
}

#[test]
fn mpi_io_figure_csvs_are_byte_stable() {
    // Figures 7, 8 and 9 all read the same five-job MPI-IO campaign
    // (job 2 carries the injected congestion anomaly).
    let runs = iosim_apps::figdata::mpi_io_figure_runs(5, true);
    let df = runs.frame();
    check(
        "fig7_quick.csv",
        &figcsv::fig7(&figures::per_rank_durations(&df)),
    );
    let df2 = runs.job_frame(2);
    check(
        "fig8_quick.csv",
        &figcsv::fig8(&figures::time_distribution(&df2)),
    );
    check(
        "fig9_quick.csv",
        &figcsv::fig9(&figures::timeline(&df2, 60)),
    );
}
