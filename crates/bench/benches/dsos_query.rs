//! DSOS joint-index ablation: query latency under the paper's
//! `job_rank_time` vs `job_time_rank` composite orders, and the cost of
//! a full scan when the index does not match the question.

use criterion::{criterion_group, criterion_main, Criterion};
use dsos_sim::{DsosCluster, Schema, Type, Value};
use std::sync::Arc;

fn build_cluster(objects: u64) -> (Arc<DsosCluster>, Arc<Schema>) {
    let schema = Schema::builder("darshan_data")
        .attr("job_id", Type::U64)
        .attr("rank", Type::U64)
        .attr("timestamp", Type::F64)
        .attr("len", Type::I64)
        .index("job_rank_time", &["job_id", "rank", "timestamp"])
        .index("job_time_rank", &["job_id", "timestamp", "rank"])
        .build()
        .unwrap();
    let cluster = DsosCluster::new(4);
    cluster.create_container("darshan", &schema);
    for i in 0..objects {
        cluster
            .ingest(
                "darshan",
                vec![
                    Value::U64(1 + i % 5),
                    Value::U64(i % 64),
                    Value::F64(i as f64 * 0.001),
                    Value::I64(4096),
                ],
            )
            .unwrap();
    }
    (cluster, schema)
}

fn bench_queries(c: &mut Criterion) {
    let (cluster, _schema) = build_cluster(50_000);
    let mut group = c.benchmark_group("dsos_query");
    group.sample_size(20);

    group.bench_function("rank_slice_via_job_rank_time", |b| {
        b.iter(|| {
            cluster.query_prefix("darshan", "job_rank_time", &[Value::U64(3), Value::U64(7)])
        });
    });
    group.bench_function("time_order_via_job_time_rank", |b| {
        b.iter(|| cluster.query_prefix("darshan", "job_time_rank", &[Value::U64(3)]));
    });
    group.bench_function("rank_slice_via_wrong_index_scan", |b| {
        // Same question as the first benchmark, but answered by
        // scanning the job under the time-ordered index and filtering —
        // what happens without the right joint index.
        b.iter(|| {
            cluster
                .query_prefix("darshan", "job_time_rank", &[Value::U64(3)])
                .into_iter()
                .filter(|o| o[1] == Value::U64(7))
                .count()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
