//! Ablation of the every-n-th-event sampling knob (the paper's
//! future-work mitigation for HMMER-class overhead, implemented here):
//! connector `on_event` throughput at sampling factors 1/10/100.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darshan_ldms_connector::{ConnectorConfig, CostModel, DarshanConnector};
use darshan_sim::hooks::{EventSink, IoEvent};
use darshan_sim::runtime::JobMeta;
use darshan_sim::{ModuleId, OpKind};
use iosim_time::{Clock, Epoch, SimDuration};
use ldms_sim::LdmsNetwork;
use std::sync::Arc;

fn event(clock: &mut Clock) -> IoEvent {
    let start = clock.time_pair();
    clock.advance(SimDuration::from_micros(10));
    IoEvent {
        module: ModuleId::Stdio,
        op: OpKind::Read,
        file: "/home/user/Pfam-A.seed".into(),
        record_id: 42,
        rank: 0,
        len: 180,
        offset: 0,
        start,
        end: clock.time_pair(),
        dur: 1e-5,
        cnt: 3,
        switches: 0,
        flushes: -1,
        max_byte: 179,
        hdf5: None,
    }
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    for every in [1u64, 10, 100] {
        group.bench_with_input(
            BenchmarkId::new("on_event_sample_every", every),
            &every,
            |b, &every| {
                let net = Arc::new(LdmsNetwork::build(&["nid00040".to_string()]));
                let conn = DarshanConnector::new(
                    ConnectorConfig {
                        sample_every: every,
                        always_publish_meta: false,
                        cost: CostModel::free(),
                        ..Default::default()
                    },
                    JobMeta::new(1, 1, "/apps/hmmbuild", 32),
                    "nid00040".to_string(),
                    net,
                );
                let mut clock = Clock::new(Epoch::from_secs(0));
                let ev = event(&mut clock);
                b.iter(|| conn.on_event(&ev, &mut clock));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
