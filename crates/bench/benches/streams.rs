//! LDMS Streams publish-path throughput: cost per publish as a function
//! of aggregation depth (node→L1→L2) and subscriber count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iosim_time::Epoch;
use ldms_sim::stream::{BufferSink, MsgFormat, StreamHub};
use ldms_sim::{LdmsNetwork, StreamMessage};
use std::sync::Arc;

fn msg() -> StreamMessage {
    StreamMessage::new(
        "darshanConnector",
        MsgFormat::Json,
        "{\"op\":\"write\",\"rank\":3,\"seg\":[{\"len\":4096}]}".to_string(),
        "nid00040",
        Epoch::from_secs(1),
    )
}

fn bench_streams(c: &mut Criterion) {
    let mut group = c.benchmark_group("streams");

    // Single-hub dispatch with varying subscriber counts.
    for subs in [0usize, 1, 4] {
        group.bench_with_input(
            BenchmarkId::new("hub_dispatch_subs", subs),
            &subs,
            |b, &subs| {
                let hub = StreamHub::new();
                let sinks: Vec<Arc<BufferSink>> = (0..subs).map(|_| BufferSink::new()).collect();
                for s in &sinks {
                    hub.subscribe("darshanConnector", s.clone());
                }
                let m = msg();
                b.iter(|| hub.dispatch(&m));
                // Keep memory bounded.
                for s in &sinks {
                    s.take();
                }
            },
        );
    }

    // Full two-hop pipeline publish (no subscriber: counts only, the
    // overhead-campaign configuration).
    group.bench_function("pipeline_publish_two_hops_unsubscribed", |b| {
        let net = LdmsNetwork::build(&["nid00040".to_string()]);
        let m = msg();
        b.iter(|| net.publish(m.clone()));
    });

    group.finish();
}

criterion_group!(benches, bench_streams);
criterion_main!(benches);
