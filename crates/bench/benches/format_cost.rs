//! Measures the *real* cost of the connector's message formatting —
//! the quantity the paper blames for HMMER's 276–1277 % overhead and
//! that the simulation's `CostModel` represents in virtual time.
//!
//! Three points: full JSON build (MET and MOD shapes) and the
//! publish-only (no-format) path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use darshan_ldms_connector::message::build_message;
use darshan_sim::hooks::IoEvent;
use darshan_sim::runtime::JobMeta;
use darshan_sim::{ModuleId, OpKind};
use iosim_time::{Clock, Epoch, SimDuration};
use iosim_util::JsonWriter;

fn sample_event(op: OpKind) -> IoEvent {
    let mut clock = Clock::new(Epoch::from_secs(1_650_000_000));
    let start = clock.time_pair();
    clock.advance(SimDuration::from_micros(120));
    IoEvent {
        module: ModuleId::Posix,
        op,
        file: "/scratch/user/output/mpi-io-test.tmp.dat".into(),
        record_id: 16_015_430_064_809_062,
        rank: 131,
        len: 16 * 1024 * 1024,
        offset: 35 * 16 * 1024 * 1024,
        start,
        end: clock.time_pair(),
        dur: 1.2e-4,
        cnt: 17,
        switches: 3,
        flushes: -1,
        max_byte: 36 * 16 * 1024 * 1024 - 1,
        hdf5: None,
    }
}

fn bench_format(c: &mut Criterion) {
    let job = JobMeta {
        job_id: 259_903,
        uid: 99_066,
        exe: "/projects/apps/mpi-io-test/bin/mpi-io-test".into(),
        nprocs: 352,
    };
    let write_ev = sample_event(OpKind::Write);
    let open_ev = sample_event(OpKind::Open);

    let mut group = c.benchmark_group("format_cost");
    group.bench_function("json_mod_message", |b| {
        b.iter_batched_ref(
            || JsonWriter::with_capacity(1024),
            |w| build_message(w, &write_ev, &job, "nid00046"),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("json_met_message", |b| {
        b.iter_batched_ref(
            || JsonWriter::with_capacity(1024),
            |w| build_message(w, &open_ev, &job, "nid00046"),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("reused_buffer_mod_message", |b| {
        let mut w = JsonWriter::with_capacity(1024);
        b.iter(|| {
            build_message(&mut w, &write_ev, &job, "nid00046");
            w.len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_format);
criterion_main!(benches);
