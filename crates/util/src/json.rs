//! Hand-rolled JSON encoding and decoding.
//!
//! The encoder mirrors what the paper's connector does with `sprintf`:
//! every integer and float is converted to its decimal string
//! representation, one field at a time, into a growing byte buffer. The
//! paper attributes the HMMER overhead (Table IIc) to exactly this
//! conversion, so the encoder also reports how many bytes were formatted
//! so the simulation can charge a calibrated cost for them.
//!
//! The decoder is a small recursive-descent parser used by the LDMS
//! stream store plugin and by tests to round-trip connector messages.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
///
/// Object keys are kept in a `BTreeMap` so iteration order (and thus CSV
/// conversion in the store plugin) is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Integers are kept distinct from floats: Darshan counters are
    /// integral and the CSV store must not render `3` as `3.0`.
    Int(i64),
    /// Unsigned integers beyond `i64::MAX` (Darshan record ids).
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Returns the string slice if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer value, coercing floats with integral value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            JsonValue::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            JsonValue::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// Returns the unsigned value if non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(u) => Some(*u),
            JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Returns the numeric value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::UInt(u) => Some(*u as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the object map if this value is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the array if this value is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Convenience field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut w = JsonWriter::new();
        write_value(&mut w, self);
        f.write_str(w.as_str())
    }
}

fn write_value(w: &mut JsonWriter, v: &JsonValue) {
    match v {
        JsonValue::Null => w.raw("null"),
        JsonValue::Bool(b) => w.raw(if *b { "true" } else { "false" }),
        JsonValue::Int(i) => w.int(*i),
        JsonValue::UInt(u) => w.uint(*u),
        JsonValue::Float(x) => w.float(*x),
        JsonValue::Str(s) => w.string(s),
        JsonValue::Array(items) => {
            w.begin_array();
            for item in items {
                w.comma();
                write_value(w, item);
            }
            w.end_array();
        }
        JsonValue::Object(map) => {
            w.begin_object();
            for (k, val) in map {
                w.comma();
                w.key(k);
                write_value(w, val);
            }
            w.end_object();
        }
    }
}

/// Incremental JSON writer that mimics the C connector's `sprintf` loop.
///
/// Tracks `formatted_digits`: the number of bytes produced by
/// number-to-string conversion. The connector's cost model charges
/// virtual time proportional to this, reproducing the paper's finding
/// that integer-to-string conversion dominates overhead for I/O-intensive
/// applications.
#[derive(Debug, Default, Clone)]
pub struct JsonWriter {
    buf: String,
    /// Bytes emitted by numeric conversions (the `sprintf` analogue).
    formatted_digits: usize,
    /// Stack of "need a comma before the next element" flags.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with a pre-sized buffer, avoiding reallocation in
    /// the per-event hot path.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: String::with_capacity(cap),
            formatted_digits: 0,
            needs_comma: Vec::new(),
        }
    }

    /// Clears the buffer for reuse (workhorse-buffer pattern); keeps the
    /// allocation.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.formatted_digits = 0;
        self.needs_comma.clear();
    }

    /// The encoded JSON so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consumes the writer, returning the encoded JSON.
    pub fn finish(self) -> String {
        self.buf
    }

    /// Total encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of bytes produced by numeric formatting so far.
    pub fn formatted_digits(&self) -> usize {
        self.formatted_digits
    }

    fn raw(&mut self, s: &str) {
        self.buf.push_str(s);
    }

    /// Writes a comma if the current container already has an element.
    pub fn comma(&mut self) {
        if let Some(top) = self.needs_comma.last_mut() {
            if *top {
                self.buf.push(',');
            }
            *top = true;
        }
    }

    /// Opens an object.
    pub fn begin_object(&mut self) {
        self.buf.push('{');
        self.needs_comma.push(false);
    }

    /// Closes an object.
    pub fn end_object(&mut self) {
        self.buf.push('}');
        self.needs_comma.pop();
    }

    /// Opens an array.
    pub fn begin_array(&mut self) {
        self.buf.push('[');
        self.needs_comma.push(false);
    }

    /// Closes an array.
    pub fn end_array(&mut self) {
        self.buf.push(']');
        self.needs_comma.pop();
    }

    /// Writes an object key (including the trailing colon).
    pub fn key(&mut self, k: &str) {
        self.string(k);
        self.buf.push(':');
    }

    /// Writes a JSON string with escaping.
    pub fn string(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    use fmt::Write as _;
                    let _ = write!(self.buf, "\\u{:04x}", c as u32);
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    /// Writes an integer, counting the converted digits (the `sprintf`
    /// analogue the cost model charges for).
    pub fn int(&mut self, v: i64) {
        use fmt::Write as _;
        let before = self.buf.len();
        let _ = write!(self.buf, "{v}");
        self.formatted_digits += self.buf.len() - before;
    }

    /// Writes an unsigned integer, counting the converted digits.
    /// Needed for Darshan record ids, whose high bit is often set.
    pub fn uint(&mut self, v: u64) {
        use fmt::Write as _;
        let before = self.buf.len();
        let _ = write!(self.buf, "{v}");
        self.formatted_digits += self.buf.len() - before;
    }

    /// Writes a float, counting the converted digits.
    pub fn float(&mut self, v: f64) {
        use fmt::Write as _;
        let before = self.buf.len();
        if v.is_finite() {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                // Match the C connector's "%.1f"-style stability for
                // round values while keeping full precision otherwise.
                let _ = write!(self.buf, "{v:.1}");
            } else {
                let _ = write!(self.buf, "{v}");
            }
        } else {
            // JSON has no NaN/Inf; Darshan uses -1 sentinels.
            let _ = write!(self.buf, "-1");
        }
        self.formatted_digits += self.buf.len() - before;
    }

    /// Writes a `key: string` member with the separating comma.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.comma();
        self.key(k);
        self.string(v);
    }

    /// Writes a `key: int` member with the separating comma.
    pub fn field_int(&mut self, k: &str, v: i64) {
        self.comma();
        self.key(k);
        self.int(v);
    }

    /// Writes a `key: float` member with the separating comma.
    pub fn field_float(&mut self, k: &str, v: f64) {
        self.comma();
        self.key(k);
        self.float(v);
    }

    /// Writes a `key: unsigned` member with the separating comma.
    pub fn field_uint(&mut self, k: &str, v: u64) {
        self.comma();
        self.key(k);
        self.uint(v);
    }
}

/// Errors produced by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or_else(|| self.err("bad \\u escape"))?;
                            let v = (d as char)
                                .to_digit(16)
                                .ok_or_else(|| self.err("bad hex digit"))?;
                            code = code * 16 + v;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Re-assemble a UTF-8 sequence.
                    let start = self.pos - 1;
                    let width = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + width).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| self.err("bad float"))
        } else {
            text.parse::<i64>()
                .map(JsonValue::Int)
                .or_else(|_| text.parse::<u64>().map(JsonValue::UInt))
                .or_else(|_| text.parse::<f64>().map(JsonValue::Float))
                .map_err(|_| self.err("bad integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_flat_object() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("op", "write");
        w.field_int("rank", 3);
        w.field_float("dur", 0.5);
        w.end_object();
        assert_eq!(w.as_str(), r#"{"op":"write","rank":3,"dur":0.5}"#);
    }

    #[test]
    fn writer_counts_formatted_digits() {
        let mut w = JsonWriter::new();
        w.int(-1234); // 5 bytes
        w.float(2.5); // 3 bytes
        assert_eq!(w.formatted_digits(), 8);
    }

    #[test]
    fn writer_escapes_strings() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd");
        assert_eq!(w.as_str(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn writer_reset_reuses_buffer() {
        let mut w = JsonWriter::with_capacity(64);
        w.begin_object();
        w.field_int("x", 1);
        w.end_object();
        let cap = w.buf.capacity();
        w.reset();
        assert!(w.is_empty());
        assert_eq!(w.formatted_digits(), 0);
        assert_eq!(w.buf.capacity(), cap);
    }

    #[test]
    fn nested_arrays_round_trip() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.comma();
        w.key("seg");
        w.begin_array();
        for i in 0..3 {
            w.comma();
            w.begin_object();
            w.field_int("len", i);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let v = parse(w.as_str()).unwrap();
        let seg = v.get("seg").unwrap().as_array().unwrap();
        assert_eq!(seg.len(), 3);
        assert_eq!(seg[2].get("len").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("42").unwrap(), JsonValue::Int(42));
        assert_eq!(parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(parse("2.5").unwrap(), JsonValue::Float(2.5));
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".to_string()));
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn parse_unicode_escape() {
        assert_eq!(
            parse("\"\\u0041\"").unwrap(),
            JsonValue::Str("A".to_string())
        );
    }

    #[test]
    fn parse_utf8_passthrough() {
        let v = parse("\"naïve\"").unwrap();
        assert_eq!(v.as_str(), Some("naïve"));
    }

    #[test]
    fn display_round_trips() {
        let src = r#"{"a":[1,2.5,"x"],"b":{"c":null}}"#;
        let v = parse(src).unwrap();
        let rendered = v.to_string();
        assert_eq!(parse(&rendered).unwrap(), v);
    }

    #[test]
    fn float_formatting_is_stable_for_round_values() {
        let mut w = JsonWriter::new();
        w.float(54.0);
        assert_eq!(w.as_str(), "54.0");
    }

    #[test]
    fn nonfinite_floats_become_sentinel() {
        let mut w = JsonWriter::new();
        w.float(f64::NAN);
        assert_eq!(w.as_str(), "-1");
    }
}
