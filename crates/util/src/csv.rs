//! Minimal CSV encoding/decoding.
//!
//! The LDMS stream store plugin converts connector JSON messages into
//! CSV rows before DSOS ingest (the paper's Figure 3 shows the CSV
//! header). Fields containing commas, quotes, or newlines are quoted per
//! RFC 4180.

/// Escapes one field for CSV output.
pub fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Encodes one CSV row (no trailing newline).
pub fn encode_row<S: AsRef<str>>(fields: &[S]) -> String {
    let mut out = String::new();
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape_field(f.as_ref()));
    }
    out
}

/// Decodes one CSV row into owned fields.
///
/// Handles quoted fields with embedded commas, escaped quotes (`""`),
/// and embedded newlines (the caller must hand in the complete logical
/// row).
pub fn decode_row(row: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = row.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                c => cur.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                c => cur.push(c),
            }
        }
    }
    fields.push(cur);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_round_trip() {
        let row = encode_row(&["a", "b", "c"]);
        assert_eq!(row, "a,b,c");
        assert_eq!(decode_row(&row), vec!["a", "b", "c"]);
    }

    #[test]
    fn quoting_commas_and_quotes() {
        let row = encode_row(&["x,y", "say \"hi\"", "plain"]);
        assert_eq!(row, "\"x,y\",\"say \"\"hi\"\"\",plain");
        assert_eq!(decode_row(&row), vec!["x,y", "say \"hi\"", "plain"]);
    }

    #[test]
    fn empty_fields_survive() {
        let row = encode_row(&["", "", "z"]);
        assert_eq!(decode_row(&row), vec!["", "", "z"]);
    }

    #[test]
    fn newline_in_field_is_quoted() {
        let row = encode_row(&["a\nb"]);
        assert_eq!(row, "\"a\nb\"");
        assert_eq!(decode_row(&row), vec!["a\nb"]);
    }

    #[test]
    fn single_empty_row_is_one_empty_field() {
        assert_eq!(decode_row(""), vec![""]);
    }
}
