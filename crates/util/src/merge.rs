//! K-way merge of sorted streams.
//!
//! The DSOS client queries every `dsosd` instance in parallel and merges
//! the per-daemon result streams in index order (Section II: "results of
//! the queried data are then returned in parallel and sorted based on the
//! index selected by the user"). This module provides the merge.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the merge heap: the current head of stream `source`.
struct HeapEntry<T> {
    item: T,
    source: usize,
}

// BinaryHeap is a max-heap; invert the ordering to pop smallest first.
impl<T: Ord> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.item == other.item && self.source == other.source
    }
}
impl<T: Ord> Eq for HeapEntry<T> {}
impl<T: Ord> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Ord> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .item
            .cmp(&self.item)
            // Tie-break on source so the merge is stable across daemons.
            .then_with(|| other.source.cmp(&self.source))
    }
}

/// Iterator merging several ascending-sorted iterators into one
/// ascending stream. Stable: ties resolve in source order.
pub struct KWayMerge<I: Iterator> {
    heap: BinaryHeap<HeapEntry<I::Item>>,
    sources: Vec<I>,
}

impl<I> KWayMerge<I>
where
    I: Iterator,
    I::Item: Ord,
{
    /// Builds the merge from the given sorted sources.
    pub fn new(sources: Vec<I>) -> Self {
        let mut sources = sources;
        let mut heap = BinaryHeap::with_capacity(sources.len());
        for (source, it) in sources.iter_mut().enumerate() {
            if let Some(item) = it.next() {
                heap.push(HeapEntry { item, source });
            }
        }
        Self { heap, sources }
    }
}

impl<I> Iterator for KWayMerge<I>
where
    I: Iterator,
    I::Item: Ord,
{
    type Item = I::Item;

    fn next(&mut self) -> Option<Self::Item> {
        let entry = self.heap.pop()?;
        if let Some(next) = self.sources[entry.source].next() {
            self.heap.push(HeapEntry {
                item: next,
                source: entry.source,
            });
        }
        Some(entry.item)
    }
}

/// Merges pre-sorted vectors into one sorted vector.
pub fn merge_sorted<T: Ord>(parts: Vec<Vec<T>>) -> Vec<T> {
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    out.extend(KWayMerge::new(
        parts.into_iter().map(Vec::into_iter).collect(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_three_streams() {
        let merged = merge_sorted(vec![vec![1, 4, 7], vec![2, 5, 8], vec![3, 6, 9]]);
        assert_eq!(merged, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn handles_empty_streams() {
        let merged = merge_sorted(vec![vec![], vec![1, 2], vec![]]);
        assert_eq!(merged, vec![1, 2]);
        let empty: Vec<i32> = merge_sorted(Vec::<Vec<i32>>::new());
        assert!(empty.is_empty());
    }

    #[test]
    fn stable_on_ties() {
        // Ties keep source order: (key, source_tag)
        let merged = merge_sorted(vec![vec![(1, 'a'), (2, 'a')], vec![(1, 'b')]]);
        assert_eq!(merged, vec![(1, 'a'), (1, 'b'), (2, 'a')]);
    }

    #[test]
    fn merge_of_duplicates() {
        let merged = merge_sorted(vec![vec![5, 5, 5], vec![5, 5]]);
        assert_eq!(merged, vec![5; 5]);
    }
}
