//! ASCII chart primitives.
//!
//! The reproduction renders the paper's Grafana panels (Figures 5–9) as
//! deterministic text charts so the harness output can be diffed and the
//! series can also be exported as CSV. These are the shared drawing
//! primitives; the figure-specific layouts live in `hpcws-sim`.

/// Renders a horizontal bar chart. Each row is `label | ####### value`.
///
/// `err` (optional, parallel to `values`) renders a `±e` suffix, used
/// for Figure 5's 95% confidence intervals.
pub fn bar_chart(labels: &[String], values: &[f64], err: Option<&[f64]>, width: usize) -> String {
    assert_eq!(labels.len(), values.len(), "labels/values length mismatch");
    if let Some(e) = err {
        assert_eq!(e.len(), values.len(), "err length mismatch");
    }
    let max = values.iter().cloned().fold(0.0_f64, f64::max).max(1e-12);
    let label_w = labels.iter().map(String::len).max().unwrap_or(0);
    let mut out = String::new();
    for (i, (label, &v)) in labels.iter().zip(values).enumerate() {
        let bar_len = ((v / max) * width as f64).round().max(0.0) as usize;
        out.push_str(&format!(
            "{label:<label_w$} | {} {v:.2}",
            "#".repeat(bar_len)
        ));
        if let Some(e) = err {
            out.push_str(&format!(" ±{:.2}", e[i]));
        }
        out.push('\n');
    }
    out
}

/// Renders a scatter plot of `(x, y)` points on a `width`×`height`
/// character grid, with `glyph` marking occupied cells. Multiple series
/// can be overlaid by calling [`ScatterGrid::plot`] repeatedly.
pub struct ScatterGrid {
    width: usize,
    height: usize,
    x_min: f64,
    x_max: f64,
    y_min: f64,
    y_max: f64,
    cells: Vec<char>,
}

impl ScatterGrid {
    /// Creates an empty grid covering the given data ranges. Degenerate
    /// ranges are widened so every point still lands on the grid.
    pub fn new(width: usize, height: usize, x: (f64, f64), y: (f64, f64)) -> Self {
        assert!(width >= 2 && height >= 2, "grid too small");
        let (x_min, mut x_max) = x;
        let (y_min, mut y_max) = y;
        if x_max <= x_min {
            x_max = x_min + 1.0;
        }
        if y_max <= y_min {
            y_max = y_min + 1.0;
        }
        Self {
            width,
            height,
            x_min,
            x_max,
            y_min,
            y_max,
            cells: vec![' '; width * height],
        }
    }

    /// Plots one series with the given glyph. Later series overwrite
    /// earlier glyphs where they collide.
    pub fn plot(&mut self, points: &[(f64, f64)], glyph: char) {
        for &(x, y) in points {
            let cx = ((x - self.x_min) / (self.x_max - self.x_min) * (self.width - 1) as f64)
                .round()
                .clamp(0.0, (self.width - 1) as f64) as usize;
            let cy = ((y - self.y_min) / (self.y_max - self.y_min) * (self.height - 1) as f64)
                .round()
                .clamp(0.0, (self.height - 1) as f64) as usize;
            // y grows upward visually: row 0 is the top.
            let row = self.height - 1 - cy;
            self.cells[row * self.width + cx] = glyph;
        }
    }

    /// Renders the grid with a left axis and bottom axis labels.
    pub fn render(&self, y_label: &str, x_label: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{y_label}\n"));
        for row in 0..self.height {
            let y_val =
                self.y_max - (self.y_max - self.y_min) * row as f64 / (self.height - 1) as f64;
            out.push_str(&format!("{y_val:>10.2} |"));
            let line: String = self.cells[row * self.width..(row + 1) * self.width]
                .iter()
                .collect();
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str(&format!("{:>11}+{}\n", "", "-".repeat(self.width)));
        out.push_str(&format!(
            "{:>12}{:<.2}{:>pad$.2}  ({x_label})\n",
            "",
            self.x_min,
            self.x_max,
            pad = self.width.saturating_sub(6)
        ));
        out
    }
}

/// Renders aligned time-series columns as a stacked sparkline block —
/// the textual analogue of a Grafana timeseries panel (Figure 9).
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || v <= 0.0 {
                ' '
            } else {
                let idx = ((v / max) * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[idx.min(LEVELS.len() - 1)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_width() {
        let out = bar_chart(&["read".into(), "write".into()], &[10.0, 5.0], None, 10);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(&"#".repeat(10)));
        assert!(lines[1].contains(&"#".repeat(5)));
    }

    #[test]
    fn bar_chart_renders_error_bars() {
        let out = bar_chart(&["open".into()], &[4.0], Some(&[0.5]), 4);
        assert!(out.contains("±0.50"));
    }

    #[test]
    fn scatter_marks_corners() {
        let mut g = ScatterGrid::new(10, 5, (0.0, 9.0), (0.0, 4.0));
        g.plot(&[(0.0, 0.0), (9.0, 4.0)], '*');
        let out = g.render("y", "x");
        // Bottom-left and top-right should both carry the glyph.
        assert_eq!(out.matches('*').count(), 2);
    }

    #[test]
    fn scatter_handles_degenerate_range() {
        let mut g = ScatterGrid::new(4, 4, (1.0, 1.0), (2.0, 2.0));
        g.plot(&[(1.0, 2.0)], 'o');
        assert_eq!(g.render("y", "x").matches('o').count(), 1);
    }

    #[test]
    fn sparkline_levels() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], ' ');
        assert_eq!(chars[2], '█');
    }

    #[test]
    fn sparkline_all_zero_is_blank() {
        assert_eq!(sparkline(&[0.0, 0.0]), "  ");
    }
}
