//! Statistics used by the evaluation harness.
//!
//! The paper reports means over five repetitions, 95% confidence
//! intervals (Figure 5), and percent overhead between Darshan-only and
//! connector runs (Table II). These helpers implement exactly those.

/// Summary statistics over a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator); 0 for n < 2.
    pub stddev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics; returns `None` for an empty sample.
    pub fn of(sample: &[f64]) -> Option<Self> {
        if sample.is_empty() {
            return None;
        }
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in sample {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min,
            max,
        })
    }

    /// Half-width of the 95% confidence interval around the mean using
    /// the Student t distribution (as in the paper's Figure 5 error
    /// bars, which use n = 5 jobs).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let t = t_critical_95(self.n - 1);
        t * self.stddev / (self.n as f64).sqrt()
    }
}

/// Two-sided 95% critical value of Student's t for `dof` degrees of
/// freedom. Table values for small dof (the harness uses 4), with the
/// normal approximation beyond the table.
pub fn t_critical_95(dof: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match dof {
        0 => f64::INFINITY,
        d if d <= TABLE.len() => TABLE[d - 1],
        d if d <= 120 => 1.96 + 2.54 / d as f64, // smooth tail toward the normal limit
        _ => 1.96,
    }
}

/// Percent overhead of `with` relative to `baseline`, as the paper
/// computes it for Table II: `(with - baseline) / baseline * 100`.
///
/// Negative values mean the instrumented run was *faster*, which the
/// paper observed (and attributed to file-system weather between the two
/// measurement campaigns).
pub fn percent_overhead(baseline: f64, with: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    (with - baseline) / baseline * 100.0
}

/// Mean of a sample (0 for an empty one) — convenience for hot paths
/// that already know the sample is non-empty.
pub fn mean(sample: &[f64]) -> f64 {
    if sample.is_empty() {
        0.0
    } else {
        sample.iter().sum::<f64>() / sample.len() as f64
    }
}

/// Median of a sample; `None` when empty. Sorts a copy.
pub fn median(sample: &[f64]) -> Option<f64> {
    if sample.is_empty() {
        return None;
    }
    let mut v = sample.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = v.len() / 2;
    Some(if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    })
}

/// Median absolute deviation of a sample (unscaled); `None` when
/// empty. The robust spread estimator the run-time anomaly detector
/// and the figure analyses share: unlike the standard deviation, one
/// wild outlier (the very thing being hunted) barely moves it.
pub fn mad(sample: &[f64]) -> Option<f64> {
    let m = median(sample)?;
    let dev: Vec<f64> = sample.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// Consistency constant making `1.4826 × MAD` estimate the standard
/// deviation of normally distributed data, so robust z-scores read on
/// the familiar sigma scale.
pub const MAD_SIGMA: f64 = 1.4826;

/// Robust z-score of `x` against a `(median, mad)` baseline:
/// `(x - median) / (MAD_SIGMA * mad)`. A degenerate baseline
/// (`mad == 0`, e.g. a perfectly regular workload) returns `0.0` when
/// `x` equals the median and `f64::INFINITY` (signed) otherwise — any
/// deviation from a spread-free baseline is infinitely surprising.
pub fn robust_z(x: f64, median: f64, mad: f64) -> f64 {
    let d = x - median;
    if mad > 0.0 {
        d / (MAD_SIGMA * mad)
    } else if d == 0.0 {
        0.0
    } else {
        d.signum() * f64::INFINITY
    }
}

/// A detected level shift in a series: the series behaves like
/// `before` up to (excluding) `index` and like `after` from `index`
/// on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangePoint {
    /// First index of the post-shift regime.
    pub index: usize,
    /// Median of the pre-shift segment.
    pub before: f64,
    /// Median of the post-shift segment.
    pub after: f64,
    /// Robust z-score of the shift: `|after - before|` over the
    /// pre-shift segment's scaled MAD.
    pub score: f64,
}

/// Scans a series for a single level shift (the "slowdown after
/// 250 s" onset) by a least-absolute-deviation two-segment fit: every
/// split with at least `min_segment` points on each side is costed by
/// the summed absolute deviation of each segment around its own
/// median, and the cheapest split (earliest on ties) is the candidate
/// regime boundary. The candidate is returned only when the
/// segment-median jump scores at least `min_score` robust-z units
/// against the pre-shift spread — jitter without a shift fits one
/// regime about as well as two and never clears the score floor.
pub fn change_point(series: &[f64], min_segment: usize, min_score: f64) -> Option<ChangePoint> {
    let min_segment = min_segment.max(1);
    if series.len() < 2 * min_segment {
        return None;
    }
    let sad = |seg: &[f64]| -> f64 {
        let m = median(seg).expect("non-empty segment");
        seg.iter().map(|x| (x - m).abs()).sum()
    };
    let mut best: Option<(f64, usize)> = None;
    for k in min_segment..=(series.len() - min_segment) {
        let (head, tail) = series.split_at(k);
        let cost = sad(head) + sad(tail);
        if best.is_none_or(|(c, _)| cost < c) {
            best = Some((cost, k));
        }
    }
    let (_, k) = best.expect("at least one valid split");
    let (head, tail) = series.split_at(k);
    let before = median(head).expect("non-empty head");
    let after = median(tail).expect("non-empty tail");
    let spread = mad(head).expect("non-empty head");
    let score = robust_z(after, before, spread).abs();
    (score >= min_score).then_some(ChangePoint {
        index: k,
        before,
        after,
        score,
    })
}

/// Pearson correlation coefficient of two equal-length samples;
/// `None` when shorter than 2 or degenerate (zero variance). Used by
/// the I/O-vs-system-telemetry correlation analysis.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Linear histogram with fixed-width bins over `[lo, hi)`.
///
/// Used by the Figure 8/9 analyses to bucket operation timestamps into
/// time bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Sum of weights per bin (e.g. bytes), parallel to `counts`.
    weights: Vec<f64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning
    /// `[lo, hi)`. `bins` must be non-zero and `hi > lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            weights: vec![0.0; bins],
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of one bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Left edge of bin `i`.
    pub fn bin_start(&self, i: usize) -> f64 {
        self.lo + self.bin_width() * i as f64
    }

    /// Adds an observation at `x` with weight `w`. Out-of-range
    /// observations clamp to the first/last bin (the analyses always
    /// construct the range from observed min/max so this only absorbs
    /// floating-point edge effects).
    pub fn add(&mut self, x: f64, w: f64) {
        let idx = ((x - self.lo) / self.bin_width()).floor();
        let idx = (idx.max(0.0) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.weights[idx] += w;
    }

    /// Count of observations per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Summed weights per bin.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.stddev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single_has_zero_spread() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn ci95_matches_hand_computation_for_n5() {
        // n=5 -> dof=4 -> t=2.776
        let s = Summary::of(&[10.0, 12.0, 11.0, 9.0, 13.0]).unwrap();
        let expect = 2.776 * s.stddev / 5f64.sqrt();
        assert!((s.ci95_half_width() - expect).abs() < 1e-12);
    }

    #[test]
    fn t_table_monotone_decreasing() {
        let mut prev = f64::INFINITY;
        for dof in 1..100 {
            let t = t_critical_95(dof);
            assert!(t <= prev + 1e-9, "t should not increase with dof");
            prev = t;
        }
        assert!((t_critical_95(1000) - 1.96).abs() < 1e-9);
    }

    #[test]
    fn overhead_signs() {
        assert!((percent_overhead(100.0, 108.41) - 8.41).abs() < 1e-9);
        assert!(percent_overhead(100.0, 90.0) < 0.0);
        assert_eq!(percent_overhead(0.0, 5.0), 0.0);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn mad_matches_hand_computation() {
        // median = 3, |dev| = [2,1,0,1,2] → median = 1.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 5.0]), Some(1.0));
        // median = 2.5, |dev| = [1.5,0.5,0.5,1.5] → median = 1.0.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0]), Some(1.0));
        // One wild outlier barely moves it: median = 3, |dev| =
        // [2,1,0,1,997] → median = 1.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 1000.0]), Some(1.0));
        assert_eq!(mad(&[]), None);
        assert_eq!(mad(&[7.0]), Some(0.0));
    }

    #[test]
    fn robust_z_scales_and_degenerates() {
        // (5 - 3) / (1.4826 * 1) ≈ 1.349.
        let z = robust_z(5.0, 3.0, 1.0);
        assert!((z - 2.0 / MAD_SIGMA).abs() < 1e-12);
        assert!(robust_z(1.0, 3.0, 1.0) < 0.0);
        // Spread-free baseline: equality is unremarkable, any
        // deviation is infinitely surprising.
        assert_eq!(robust_z(3.0, 3.0, 0.0), 0.0);
        assert_eq!(robust_z(9.0, 3.0, 0.0), f64::INFINITY);
        assert_eq!(robust_z(-9.0, 3.0, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn change_point_finds_the_level_shift() {
        // Five quiet points, then five slow ones: the shift lands at
        // index 5 with before=1.0, after=6.0.
        let series = [1.0, 1.1, 0.9, 1.0, 1.05, 6.0, 6.1, 5.9, 6.0, 6.2];
        let cp = change_point(&series, 2, 3.0).expect("shift detected");
        assert_eq!(cp.index, 5);
        assert!((cp.before - 1.0).abs() < 1e-9);
        assert!((cp.after - 6.0).abs() < 1e-9);
        assert!(cp.score > 3.0);
    }

    #[test]
    fn change_point_ignores_flat_and_short_series() {
        assert_eq!(change_point(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0], 2, 3.0), None);
        // Too short for two min-length segments.
        assert_eq!(change_point(&[1.0, 9.0, 9.0], 2, 3.0), None);
        // Jittery but shift-free series stays below the score floor.
        let series = [1.0, 1.2, 0.8, 1.1, 0.9, 1.0, 1.15, 0.85];
        assert_eq!(change_point(&series, 2, 6.0), None);
    }

    #[test]
    fn change_point_on_spread_free_prefix_is_infinitely_scored() {
        // A perfectly regular prefix (MAD 0) followed by a jump: the
        // earliest explaining split wins despite the infinite tie.
        let series = [2.0, 2.0, 2.0, 2.0, 8.0, 8.0, 8.0];
        let cp = change_point(&series, 2, 3.0).unwrap();
        assert_eq!(cp.index, 4);
        assert_eq!(cp.score, f64::INFINITY);
    }

    #[test]
    fn pearson_detects_linear_relations() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &down).unwrap() + 1.0).abs() < 1e-12);
        // Degenerate cases.
        assert_eq!(pearson(&x, &[1.0, 1.0, 1.0, 1.0]), None);
        assert_eq!(pearson(&x, &x[..2]), None);
        assert_eq!(pearson(&[1.0], &[1.0]), None);
    }

    #[test]
    fn histogram_binning_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(0.0, 1.0);
        h.add(9.99, 2.0);
        h.add(-5.0, 1.0); // clamps to first bin
        h.add(42.0, 1.0); // clamps to last bin
        assert_eq!(h.counts(), &[2, 0, 0, 0, 2]);
        assert!((h.weights()[4] - 3.0).abs() < 1e-12);
        assert!((h.bin_start(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
