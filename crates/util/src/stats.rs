//! Statistics used by the evaluation harness.
//!
//! The paper reports means over five repetitions, 95% confidence
//! intervals (Figure 5), and percent overhead between Darshan-only and
//! connector runs (Table II). These helpers implement exactly those.

/// Summary statistics over a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator); 0 for n < 2.
    pub stddev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics; returns `None` for an empty sample.
    pub fn of(sample: &[f64]) -> Option<Self> {
        if sample.is_empty() {
            return None;
        }
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in sample {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min,
            max,
        })
    }

    /// Half-width of the 95% confidence interval around the mean using
    /// the Student t distribution (as in the paper's Figure 5 error
    /// bars, which use n = 5 jobs).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let t = t_critical_95(self.n - 1);
        t * self.stddev / (self.n as f64).sqrt()
    }
}

/// Two-sided 95% critical value of Student's t for `dof` degrees of
/// freedom. Table values for small dof (the harness uses 4), with the
/// normal approximation beyond the table.
pub fn t_critical_95(dof: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match dof {
        0 => f64::INFINITY,
        d if d <= TABLE.len() => TABLE[d - 1],
        d if d <= 120 => 1.96 + 2.54 / d as f64, // smooth tail toward the normal limit
        _ => 1.96,
    }
}

/// Percent overhead of `with` relative to `baseline`, as the paper
/// computes it for Table II: `(with - baseline) / baseline * 100`.
///
/// Negative values mean the instrumented run was *faster*, which the
/// paper observed (and attributed to file-system weather between the two
/// measurement campaigns).
pub fn percent_overhead(baseline: f64, with: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    (with - baseline) / baseline * 100.0
}

/// Mean of a sample (0 for an empty one) — convenience for hot paths
/// that already know the sample is non-empty.
pub fn mean(sample: &[f64]) -> f64 {
    if sample.is_empty() {
        0.0
    } else {
        sample.iter().sum::<f64>() / sample.len() as f64
    }
}

/// Median of a sample; `None` when empty. Sorts a copy.
pub fn median(sample: &[f64]) -> Option<f64> {
    if sample.is_empty() {
        return None;
    }
    let mut v = sample.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = v.len() / 2;
    Some(if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    })
}

/// Pearson correlation coefficient of two equal-length samples;
/// `None` when shorter than 2 or degenerate (zero variance). Used by
/// the I/O-vs-system-telemetry correlation analysis.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Linear histogram with fixed-width bins over `[lo, hi)`.
///
/// Used by the Figure 8/9 analyses to bucket operation timestamps into
/// time bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Sum of weights per bin (e.g. bytes), parallel to `counts`.
    weights: Vec<f64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning
    /// `[lo, hi)`. `bins` must be non-zero and `hi > lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            weights: vec![0.0; bins],
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of one bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Left edge of bin `i`.
    pub fn bin_start(&self, i: usize) -> f64 {
        self.lo + self.bin_width() * i as f64
    }

    /// Adds an observation at `x` with weight `w`. Out-of-range
    /// observations clamp to the first/last bin (the analyses always
    /// construct the range from observed min/max so this only absorbs
    /// floating-point edge effects).
    pub fn add(&mut self, x: f64, w: f64) {
        let idx = ((x - self.lo) / self.bin_width()).floor();
        let idx = (idx.max(0.0) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.weights[idx] += w;
    }

    /// Count of observations per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Summed weights per bin.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.stddev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single_has_zero_spread() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn ci95_matches_hand_computation_for_n5() {
        // n=5 -> dof=4 -> t=2.776
        let s = Summary::of(&[10.0, 12.0, 11.0, 9.0, 13.0]).unwrap();
        let expect = 2.776 * s.stddev / 5f64.sqrt();
        assert!((s.ci95_half_width() - expect).abs() < 1e-12);
    }

    #[test]
    fn t_table_monotone_decreasing() {
        let mut prev = f64::INFINITY;
        for dof in 1..100 {
            let t = t_critical_95(dof);
            assert!(t <= prev + 1e-9, "t should not increase with dof");
            prev = t;
        }
        assert!((t_critical_95(1000) - 1.96).abs() < 1e-9);
    }

    #[test]
    fn overhead_signs() {
        assert!((percent_overhead(100.0, 108.41) - 8.41).abs() < 1e-9);
        assert!(percent_overhead(100.0, 90.0) < 0.0);
        assert_eq!(percent_overhead(0.0, 5.0), 0.0);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn pearson_detects_linear_relations() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &down).unwrap() + 1.0).abs() < 1e-12);
        // Degenerate cases.
        assert_eq!(pearson(&x, &[1.0, 1.0, 1.0, 1.0]), None);
        assert_eq!(pearson(&x, &x[..2]), None);
        assert_eq!(pearson(&[1.0], &[1.0]), None);
    }

    #[test]
    fn histogram_binning_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(0.0, 1.0);
        h.add(9.99, 2.0);
        h.add(-5.0, 1.0); // clamps to first bin
        h.add(42.0, 1.0); // clamps to last bin
        assert_eq!(h.counts(), &[2, 0, 0, 0, 2]);
        assert!((h.weights()[4] - 3.0).abs() < 1e-12);
        assert!((h.bin_start(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
