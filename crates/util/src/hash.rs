//! FNV-1a hashing.
//!
//! Darshan derives a stable 64-bit *record id* for every file path so
//! that all ranks agree on the id without communication; the connector
//! publishes it as `record_id` (Table I). We use FNV-1a like Darshan's
//! own hash for this purpose: deterministic across runs, cheap, and with
//! good dispersion on path-like strings.

/// 64-bit FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a byte slice with 64-bit FNV-1a.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Combines an existing hash with more bytes (streaming use).
pub fn fnv1a64_continue(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn deterministic_and_distinct() {
        let a = fnv1a64(b"/scratch/run1/output.dat");
        let b = fnv1a64(b"/scratch/run1/output.dat");
        let c = fnv1a64(b"/scratch/run2/output.dat");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn continue_matches_one_shot() {
        let h = fnv1a64_continue(fnv1a64(b"hello "), b"world");
        assert_eq!(h, fnv1a64(b"hello world"));
    }
}
