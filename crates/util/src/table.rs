//! Plain-text table rendering for the Table II harness output.

/// A simple column-aligned text table builder.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header cells.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        while cells.len() < self.header.len() {
            cells.push(String::new());
        }
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator line under the header.
    pub fn render(&self) -> String {
        let ncols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = crate::csv::encode_row(&self.header);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&crate::csv::encode_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "2"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "value" column starts at the same offset.
        let off0 = lines[0].find("value").unwrap();
        let off2 = lines[2].find('1').unwrap();
        assert_eq!(off0, off2);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["only-one"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn csv_export() {
        let mut t = TextTable::new(vec!["x", "y"]);
        t.row(vec!["1", "2,3"]);
        assert_eq!(t.to_csv(), "x,y\n1,\"2,3\"\n");
    }
}
