//! Utility substrate shared by every crate in the Darshan-LDMS reproduction.
//!
//! This crate deliberately has no third-party dependencies: the JSON
//! encoder here is a faithful stand-in for the `sprintf`-based message
//! formatting in the paper's C connector (Section VI.A blames that
//! formatting for the HMMER overhead), so it is hand-rolled rather than
//! delegated to `serde_json`. Everything else is small, well-tested
//! machinery: statistics used by the evaluation harness, CSV encoding for
//! the LDMS store plugin, a k-way merge used by DSOS parallel queries,
//! and the FNV hash Darshan-style record ids are built from.

#![forbid(unsafe_code)]

pub mod chart;
pub mod csv;
pub mod hash;
pub mod json;
pub mod merge;
pub mod stats;
pub mod table;

pub use hash::fnv1a64;
pub use json::{JsonValue, JsonWriter};
pub use stats::Summary;
