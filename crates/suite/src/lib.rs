//! Hosts the repository-level `examples/` and `tests/` targets.
//!
//! The workspace root is virtual, so this crate declares the
//! runnable examples (`examples/*.rs` at the repository root) and the
//! cross-crate integration tests (`tests/*.rs`) via explicit target
//! paths in its manifest. It re-exports the public API surface those
//! targets use, so examples read as a downstream user would write them.

#![forbid(unsafe_code)]

pub mod scenario;

pub use darshan_ldms_connector as connector;
pub use darshan_sim as darshan;
pub use dsos_sim as dsos;
pub use hpcws_sim as hpcws;
pub use iosim_apps as apps;
pub use iosim_fs as simfs;
pub use iosim_mpi as simmpi;
pub use iosim_telemetry as telemetry;
pub use iosim_time as simtime;
pub use iosim_util as util;
pub use ldms_sim as ldms;
