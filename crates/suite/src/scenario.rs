//! Deterministic, labeled anomaly scenarios for detection testing.
//!
//! Diagnosis is only trustworthy when detection quality is measured
//! against ground truth. This module synthesizes seeded workloads in
//! the online detector's event vocabulary — straggler ranks, mid-run
//! congestion ramps, pathological tiny unaligned writes, and calm
//! controls — each carrying machine-readable [`GroundTruth`] labels
//! (anomaly class, job, rank, time window), so precision and recall
//! are computed *exactly* by [`evaluate`] and gated in CI.
//!
//! Every scenario is a pure function of its [`ScenarioConfig`]: same
//! seed, same events, same labels, byte for byte.

use hpcws_sim::online::{AnomalyKind, DiagnosticEvent, OnlineEvent};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// The anomaly classes the generator can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnomalyClass {
    /// One rank's I/O runs a large factor slower for the whole job.
    StragglerRank,
    /// All I/O slows by a large factor from a mid-run onset instant.
    CongestionRamp,
    /// One rank's writes degenerate into tiny unaligned writes for a
    /// stretch of the write phase.
    TinyWrites,
    /// No anomaly at all — the false-positive control.
    CalmControl,
}

impl AnomalyClass {
    /// Stable kebab-case label.
    pub fn as_str(self) -> &'static str {
        match self {
            AnomalyClass::StragglerRank => "straggler-rank",
            AnomalyClass::CongestionRamp => "congestion-ramp",
            AnomalyClass::TinyWrites => "tiny-writes",
            AnomalyClass::CalmControl => "calm-control",
        }
    }

    /// The detection kind a correct detector reports for this class
    /// (`None` for the calm control — any detection is a false alarm).
    pub fn expected_kind(self) -> Option<AnomalyKind> {
        match self {
            AnomalyClass::StragglerRank => Some(AnomalyKind::StragglerRank),
            AnomalyClass::CongestionRamp => Some(AnomalyKind::DurationOutlier),
            AnomalyClass::TinyWrites => Some(AnomalyKind::PhaseAnomaly),
            AnomalyClass::CalmControl => None,
        }
    }
}

/// One labeled anomaly: what was injected, where, and when.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    /// Injected class.
    pub class: AnomalyClass,
    /// Job the anomaly was injected into.
    pub job_id: u64,
    /// Offending rank for rank-scoped injections.
    pub rank: Option<u64>,
    /// `[start, end]` of the anomalous regime in absolute virtual
    /// seconds — a correct detection's onset falls inside it (up to
    /// the evaluation tolerance).
    pub window: (f64, f64),
}

/// Shape of one generated workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// RNG seed; every timing and jitter draw descends from it.
    pub seed: u64,
    /// Job id stamped on every event.
    pub job_id: u64,
    /// First event instant (absolute virtual seconds).
    pub t0: f64,
    /// MPI ranks (≥ 4 so straggler detection engages).
    pub ranks: u64,
    /// Statistics windows of writing before the read phase (≥ 8 so
    /// mid-run onsets have a calm prefix to break from).
    pub write_windows: u64,
    /// Statistics windows of reading after the writes (≥ 2).
    pub read_windows: u64,
    /// Width of one window in virtual seconds — match the detector's
    /// `window_s` so labels and statistics windows line up.
    pub window_s: f64,
    /// Same-op events per rank per window (≥ 3 so windows are judged).
    pub events_per_window: u64,
    /// Nominal write duration (seconds).
    pub base_write_s: f64,
    /// Nominal read duration (seconds).
    pub base_read_s: f64,
    /// Fractional duration jitter half-width (keep well under the
    /// detector's outlier factor or calm controls stop being calm).
    pub jitter: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            job_id: 900,
            t0: 1_650_000_000.0,
            ranks: 4,
            write_windows: 10,
            read_windows: 3,
            window_s: 10.0,
            events_per_window: 4,
            base_write_s: 0.1,
            base_read_s: 0.05,
            jitter: 0.05,
        }
    }
}

impl ScenarioConfig {
    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the job id.
    #[must_use]
    pub fn with_job_id(mut self, job_id: u64) -> Self {
        self.job_id = job_id;
        self
    }

    /// End of the workload (start of the instant after the last
    /// window).
    pub fn t_end(&self) -> f64 {
        self.t0 + (self.write_windows + self.read_windows) as f64 * self.window_s
    }
}

/// One generated workload: its events (in virtual-time order) and the
/// ground-truth labels of everything injected.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Class the scenario was built around.
    pub class: AnomalyClass,
    /// Stable name (`straggler-rank`, `congestion-ramp`, …).
    pub name: &'static str,
    /// Events in non-decreasing `end` order, ready for
    /// `OnlineDetector::observe`.
    pub events: Vec<OnlineEvent>,
    /// Machine-readable injection labels (empty for calm controls).
    pub labels: Vec<GroundTruth>,
}

/// The multiplicative slowdowns injected: far above the detector's
/// default thresholds (factor 3, z 6) so recall is a fair ask, while
/// calm jitter stays far below them so precision is too.
const STRAGGLER_FACTOR: f64 = 8.0;
const CONGESTION_FACTOR: f64 = 6.0;
/// Tiny-write burst: events per affected window (above the detector's
/// default `tiny_write_min` of 8).
const TINY_PER_WINDOW: u64 = 10;

/// Generates the labeled scenario for one anomaly class.
pub fn generate(class: AnomalyClass, cfg: &ScenarioConfig) -> Scenario {
    assert!(cfg.ranks >= 4, "straggler detection needs >= 4 ranks");
    assert!(cfg.write_windows >= 8, "mid-run onsets need a calm prefix");
    assert!(cfg.read_windows >= 2 && cfg.events_per_window >= 3);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (class as u64).wrapping_mul(0x9E37));

    // Anomaly placement is drawn first so the event loop below is
    // identical across classes (same number of RNG draws per event).
    let straggler_rank = rng.gen_range(0..cfg.ranks);
    let onset_w = rng.gen_range(4..cfg.write_windows - 2);
    let tiny_rank = rng.gen_range(0..cfg.ranks);
    let tiny_start_w = rng.gen_range(1..cfg.write_windows - 2);
    let tiny_span_w = 2u64;

    let onset_t = cfg.t0 + onset_w as f64 * cfg.window_s;
    let mut labels = Vec::new();
    match class {
        AnomalyClass::StragglerRank => labels.push(GroundTruth {
            class,
            job_id: cfg.job_id,
            rank: Some(straggler_rank),
            window: (cfg.t0, cfg.t_end()),
        }),
        AnomalyClass::CongestionRamp => labels.push(GroundTruth {
            class,
            job_id: cfg.job_id,
            rank: None,
            window: (onset_t, cfg.t_end()),
        }),
        AnomalyClass::TinyWrites => labels.push(GroundTruth {
            class,
            job_id: cfg.job_id,
            rank: Some(tiny_rank),
            window: (
                cfg.t0 + tiny_start_w as f64 * cfg.window_s,
                cfg.t0 + (tiny_start_w + tiny_span_w) as f64 * cfg.window_s,
            ),
        }),
        AnomalyClass::CalmControl => {}
    }

    let total_windows = cfg.write_windows + cfg.read_windows;
    let spacing = cfg.window_s / (cfg.events_per_window + 1) as f64;
    let block = 4 << 20;
    let mut events = Vec::new();
    for w in 0..total_windows {
        let reading = w >= cfg.write_windows;
        let (op, base) = if reading {
            ("read", cfg.base_read_s)
        } else {
            ("write", cfg.base_write_s)
        };
        for i in 0..cfg.events_per_window {
            for rank in 0..cfg.ranks {
                let t = cfg.t0
                    + w as f64 * cfg.window_s
                    + (i + 1) as f64 * spacing
                    + rank as f64 * 0.01;
                let mut dur = base * (1.0 + rng.gen_range(-cfg.jitter..cfg.jitter));
                if class == AnomalyClass::StragglerRank && rank == straggler_rank && !reading {
                    dur *= STRAGGLER_FACTOR;
                }
                if class == AnomalyClass::CongestionRamp && t >= onset_t {
                    dur *= CONGESTION_FACTOR;
                }
                events.push(OnlineEvent {
                    job_id: cfg.job_id,
                    rank,
                    producer: format!("nid{:05}", 40 + rank / 4),
                    op: op.to_string(),
                    file: "/scratch/scenario.dat".to_string(),
                    len: block,
                    off: block * i64::try_from(w * cfg.events_per_window + i).unwrap_or(0),
                    dur,
                    end: t,
                });
            }
        }
        // The tiny-write burst rides on top of the base workload: the
        // offending rank issues a flurry of sub-block unaligned writes
        // inside the affected windows.
        if class == AnomalyClass::TinyWrites
            && (tiny_start_w..tiny_start_w + tiny_span_w).contains(&w)
        {
            for k in 0..TINY_PER_WINDOW {
                let t = cfg.t0 + w as f64 * cfg.window_s + (k + 1) as f64 * 0.3 + 0.005;
                events.push(OnlineEvent {
                    job_id: cfg.job_id,
                    rank: tiny_rank,
                    producer: format!("nid{:05}", 40 + tiny_rank / 4),
                    op: "write".to_string(),
                    file: "/scratch/scenario.dat".to_string(),
                    len: 512,
                    off: 4096 * i64::try_from(k).unwrap_or(0) + 13,
                    dur: 0.01,
                    end: t,
                });
            }
        }
    }
    events.sort_by(|a, b| {
        a.end
            .total_cmp(&b.end)
            .then_with(|| a.rank.cmp(&b.rank))
            .then_with(|| a.op.cmp(&b.op))
    });
    Scenario {
        class,
        name: class.as_str(),
        events,
        labels,
    }
}

/// The full labeled corpus for one seed: one scenario per anomaly
/// class plus the calm control, each on its own job id.
pub fn corpus(seed: u64) -> Vec<Scenario> {
    [
        AnomalyClass::StragglerRank,
        AnomalyClass::CongestionRamp,
        AnomalyClass::TinyWrites,
        AnomalyClass::CalmControl,
    ]
    .into_iter()
    .enumerate()
    .map(|(i, class)| {
        let cfg = ScenarioConfig::default()
            .with_seed(seed.wrapping_mul(31).wrapping_add(i as u64))
            .with_job_id(900 + i as u64);
        generate(class, &cfg)
    })
    .collect()
}

/// Exact per-class detection quality against ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassQuality {
    /// Labels matched by at least one detection.
    pub true_positives: u64,
    /// Detections of the class's kind matching no label.
    pub false_positives: u64,
    /// Labels no detection matched.
    pub false_negatives: u64,
}

impl ClassQuality {
    /// Fraction of this class's detections that were justified
    /// (`1.0` when the class produced no detections at all).
    pub fn precision(&self) -> f64 {
        let dets = self.true_positives + self.false_positives;
        if dets == 0 {
            1.0
        } else {
            self.true_positives as f64 / dets as f64
        }
    }

    /// Fraction of this class's labels that were found (`1.0` when
    /// nothing was labeled).
    pub fn recall(&self) -> f64 {
        let labels = self.true_positives + self.false_negatives;
        if labels == 0 {
            1.0
        } else {
            self.true_positives as f64 / labels as f64
        }
    }

    /// Folds another tally (a different seed or scenario) into this
    /// one.
    pub fn absorb(&mut self, other: ClassQuality) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
    }
}

/// Whether a detection is a correct finding of a label, up to `tol`
/// seconds of onset tolerance (detections quantize onsets to window
/// starts, so allow one window of slack).
pub fn matches(d: &DiagnosticEvent, l: &GroundTruth, tol: f64) -> bool {
    l.class.expected_kind() == Some(d.kind)
        && d.job_id == l.job_id
        && (l.rank.is_none() || d.rank == l.rank)
        && d.onset >= l.window.0 - tol
        && d.onset <= l.window.1 + tol
}

/// Scores detections against labels, exactly: every label is either
/// found (some detection matches it) or missed, and every detection
/// either justifies itself against some label or is a false alarm.
/// Detections whose kind corresponds to no evaluated class are
/// counted as false positives of their own class.
pub fn evaluate(
    detections: &[DiagnosticEvent],
    labels: &[GroundTruth],
    tol: f64,
) -> BTreeMap<AnomalyClass, ClassQuality> {
    let kind_class = |k: AnomalyKind| match k {
        AnomalyKind::StragglerRank => AnomalyClass::StragglerRank,
        AnomalyKind::DurationOutlier => AnomalyClass::CongestionRamp,
        AnomalyKind::PhaseAnomaly => AnomalyClass::TinyWrites,
    };
    let mut out: BTreeMap<AnomalyClass, ClassQuality> = BTreeMap::new();
    for l in labels {
        let q = out.entry(l.class).or_default();
        if detections.iter().any(|d| matches(d, l, tol)) {
            q.true_positives += 1;
        } else {
            q.false_negatives += 1;
        }
    }
    for d in detections {
        if !labels.iter().any(|l| matches(d, l, tol)) {
            out.entry(kind_class(d.kind)).or_default().false_positives += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_per_seed() {
        let cfg = ScenarioConfig::default().with_seed(42);
        let a = generate(AnomalyClass::CongestionRamp, &cfg);
        let b = generate(AnomalyClass::CongestionRamp, &cfg);
        assert_eq!(a, b);
        let c = generate(AnomalyClass::CongestionRamp, &cfg.clone().with_seed(43));
        assert_ne!(a.events, c.events, "different seed, different jitter");
    }

    #[test]
    fn corpus_covers_every_class_with_disjoint_jobs() {
        let corpus = corpus(7);
        assert_eq!(corpus.len(), 4);
        let mut jobs: Vec<u64> = corpus
            .iter()
            .flat_map(|s| s.events.iter().map(|e| e.job_id))
            .collect();
        jobs.sort_unstable();
        jobs.dedup();
        assert_eq!(jobs.len(), 4, "one job per scenario");
        let calm = corpus
            .iter()
            .find(|s| s.class == AnomalyClass::CalmControl)
            .unwrap();
        assert!(calm.labels.is_empty());
        for s in &corpus {
            assert!(s.events.windows(2).all(|w| w[0].end <= w[1].end));
            if s.class != AnomalyClass::CalmControl {
                assert_eq!(s.labels.len(), 1);
            }
        }
    }

    #[test]
    fn evaluate_scores_exactly() {
        let label = GroundTruth {
            class: AnomalyClass::CongestionRamp,
            job_id: 1,
            rank: None,
            window: (100.0, 200.0),
        };
        let det = |onset: f64| DiagnosticEvent {
            kind: AnomalyKind::DurationOutlier,
            severity: hpcws_sim::DetectionSeverity::Warning,
            job_id: 1,
            rank: None,
            op: "write".to_string(),
            onset,
            detected_at: onset + 10.0,
            observed: 0.6,
            baseline: 0.1,
            evidence: String::new(),
        };
        // Found, inside the window.
        let q = evaluate(&[det(150.0)], std::slice::from_ref(&label), 0.0);
        let cq = q[&AnomalyClass::CongestionRamp];
        assert_eq!((cq.true_positives, cq.false_positives), (1, 0));
        assert_eq!(cq.precision(), 1.0);
        assert_eq!(cq.recall(), 1.0);
        // A detection far outside the window is a false positive AND
        // the label goes unfound.
        let q = evaluate(&[det(500.0)], std::slice::from_ref(&label), 5.0);
        let cq = q[&AnomalyClass::CongestionRamp];
        assert_eq!(
            (cq.true_positives, cq.false_positives, cq.false_negatives),
            (0, 1, 1)
        );
        assert_eq!(cq.precision(), 0.0);
        assert_eq!(cq.recall(), 0.0);
        // Tolerance admits a detection quantized slightly early.
        let q = evaluate(&[det(95.0)], &[label], 10.0);
        assert_eq!(q[&AnomalyClass::CongestionRamp].recall(), 1.0);
    }
}
