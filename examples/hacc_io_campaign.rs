//! HACC-IO campaign: run the same checkpoint/restart workload five
//! times (as the paper does for Figure 5), store every event, and
//! reproduce the per-op occurrence statistics and per-node breakdown.
//!
//! Run with: `cargo run --release -p repro-suite --example hacc_io_campaign`

use repro_suite::apps::figdata;
use repro_suite::hpcws::{dashboard, figures};

fn main() {
    // Five connector-instrumented HACC-IO jobs on Lustre (scaled-down
    // geometry so the example finishes in seconds; pass jobs through
    // the paper-scale path via `repro-bench --bin fig5` instead).
    let runs = figdata::hacc_figure_runs(5, true);
    let df = runs.frame();
    println!(
        "collected {} events across {} jobs\n",
        df.len(),
        runs.job_ids.len()
    );

    // Figure 5: operation occurrence means with 95% CIs.
    let occ = figures::op_occurrence(&df);
    println!(
        "{}",
        dashboard::render_op_occurrence("HACC-IO op occurrences (5 jobs, ±95% CI)", &occ)
    );

    // Figure 6: per-node open/close counts for the first two jobs.
    let job_col = repro_suite::connector::schema::column_id("job_id");
    let two_jobs =
        df.filter(|row| matches!(row[job_col], repro_suite::dsos::Value::U64(j) if j <= 301));
    let per_node = figures::per_node_ops(&two_jobs, &["open", "close"]);
    println!(
        "{}",
        dashboard::render_per_node_ops("open/close per node (jobs 300, 301)", &per_node)
    );

    // The runs also wrote classic Darshan logs; show one summary to
    // contrast post-run aggregates with the run-time stream.
    let log = repro_suite::darshan::log::parse_log(&runs.results[0].log_bytes).unwrap();
    println!(
        "--- stock Darshan post-run summary of job {} ---",
        runs.job_ids[0]
    );
    print!("{}", log.summary());
}
