//! Runtime dashboard: the Grafana-style view of an anomalous job.
//!
//! Reproduces the paper's Section VI.B story end to end: five MPI-IO
//! benchmark jobs run without collective I/O on Lustre; job 2 suffers a
//! file-system storm; because every event carries an *absolute
//! timestamp*, the analyses can show not just that job 2 was slow but
//! *when* inside the run the slowness happened.
//!
//! Run with: `cargo run --release -p repro-suite --example runtime_dashboard`

use repro_suite::apps::figdata;
use repro_suite::hpcws::{dashboard, figures};

fn main() {
    let runs = figdata::mpi_io_figure_runs(5, true);

    // Figure 7: per-job read/write duration means expose the outlier.
    let all = runs.frame();
    println!("per-job mean operation durations:");
    for op in ["read", "write"] {
        for (job, mean) in figures::job_mean_durations(&all, op) {
            let marker = if job == runs.job_ids[2] {
                "  <-- anomalous"
            } else {
                ""
            };
            println!("  job {job}: mean {op} {mean:>8.3} s{marker}");
        }
    }
    println!();

    // Figures 8 & 9 drill into the anomalous job.
    let job2 = runs.job_frame(2);
    let pts = figures::time_distribution(&job2);
    println!(
        "{}",
        dashboard::render_time_distribution("job 2: operation durations over execution time", &pts)
    );
    let tl = figures::timeline(&job2, 48);
    println!(
        "{}",
        dashboard::render_timeline("job 2: ops and bytes per time bin (all ranks)", &tl)
    );

    // And the healthy neighbour for contrast.
    let job0 = runs.job_frame(0);
    let tl0 = figures::timeline(&job0, 48);
    println!(
        "{}",
        dashboard::render_timeline("job 0 (healthy) for comparison", &tl0)
    );
}
