//! Quickstart: instrument a tiny MPI job with Darshan, attach the
//! Darshan-LDMS Connector, and watch timestamped I/O events land in
//! DSOS while the job is still running (conceptually — everything here
//! is the simulated substrate on a virtual clock).
//!
//! Run with: `cargo run -p repro-suite --example quickstart`

use repro_suite::apps::stack::DarshanStack;
use repro_suite::connector::{schema::column_id, ConnectorConfig, Pipeline, DEFAULT_STREAM_TAG};
use repro_suite::darshan::runtime::JobMeta;
use repro_suite::dsos::Value;
use repro_suite::simfs::nfs::NfsModel;
use repro_suite::simfs::{SimFs, Weather};
use repro_suite::simmpi::{Job, JobParams, PosixLayer};

fn main() {
    // 1. A simulated NFS file system on a virtual clock.
    let fs = SimFs::new(Box::<NfsModel>::default(), Weather::calm(), 1024 * 1024);
    fs.set_active_clients(4);

    // 2. The monitoring pipeline of the paper's Figure 4: compute-node
    //    ldmsds -> L1 aggregator -> L2 aggregator -> DSOS store.
    let nodes: Vec<String> = (0..2).map(|i| format!("nid{:05}", 40 + i)).collect();
    let pipeline = Pipeline::build(&nodes, 2, DEFAULT_STREAM_TAG);

    // 3. A 4-rank MPI job whose every I/O call is wrapped by Darshan,
    //    with the connector registered as the per-event hook.
    let job = JobMeta::new(259_903, 99_066, "/apps/quickstart", 4);
    let params = JobParams {
        ranks: 4,
        ranks_per_node: 2,
        jitter: 0.0,
        ..Default::default()
    };
    Job::run(params, |ctx| {
        let connector = pipeline.connector_for_rank(
            ConnectorConfig::default(),
            job.clone(),
            ctx.io.producer_name(),
        );
        let stack = DarshanStack::new(fs.clone(), job.clone(), ctx.rank(), Some(connector));
        // Each rank writes its slice of a shared file and reads it back.
        let mut h = stack
            .posix
            .open(&mut ctx.io, "/scratch/quickstart.dat", true, true, true)
            .unwrap();
        let off = u64::from(ctx.rank()) * 1024 * 1024;
        stack
            .posix
            .write_at(&mut ctx.io, &mut h, off, 1024 * 1024)
            .unwrap();
        stack
            .posix
            .read_at(&mut ctx.io, &mut h, off, 1024 * 1024)
            .unwrap();
        stack.posix.close(&mut ctx.io, &mut h).unwrap();
    });

    // 4. Query the stored events back out of DSOS through the
    //    `job_rank_time` joint index — ordered by job, rank, timestamp.
    let events = pipeline.events_of_job(259_903);
    println!("stored {} timestamped I/O events; first few:", events.len());
    let (op, rank, ts, dur) = (
        column_id("op"),
        column_id("rank"),
        column_id("seg_timestamp"),
        column_id("seg_dur"),
    );
    for e in events.iter().take(8) {
        println!(
            "  rank {:>2}  {:<5}  t={}  dur={}s",
            e[rank], e[op], e[ts], e[dur]
        );
    }
    // The absolute timestamp is the integration's contribution: stock
    // Darshan would only know per-file aggregates after the run.
    let first_ts = events
        .iter()
        .filter_map(|e| e[ts].as_f64())
        .fold(f64::INFINITY, f64::min);
    assert!(first_ts > 1.6e9, "timestamps are absolute epoch seconds");
    let met = events
        .iter()
        .filter(|e| e[column_id("type")] == Value::Str("MET".into()))
        .count();
    println!("MET (metadata-bearing open) messages: {met}");
}
