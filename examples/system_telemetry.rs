//! System telemetry riding the same pipeline as the Darshan stream.
//!
//! LDMS's original job is periodic system sampling; the paper's vision
//! is correlating that telemetry with the connector's I/O events
//! ("identify any correlations between the file system, network
//! congestion or resource contentions and the I/O performance"). This
//! example runs meminfo/vmstat samplers on every compute node,
//! publishes their metric sets through the same two-level aggregation
//! as the Darshan stream, and renders a small combined dashboard.
//!
//! Run with: `cargo run -p repro-suite --example system_telemetry`

use repro_suite::ldms::sampler::{
    publish_metric_set, sample_window, MeminfoSampler, VmstatSampler,
};
use repro_suite::ldms::stream::BufferSink;
use repro_suite::ldms::LdmsNetwork;
use repro_suite::simtime::{Epoch, SimDuration};
use repro_suite::util::chart::sparkline;
use repro_suite::util::json;

fn main() {
    let nodes: Vec<String> = (0..4).map(|i| format!("nid{:05}", 40 + i)).collect();
    let net = LdmsNetwork::build(&nodes);

    // Subscribe analysis taps at the L2 aggregator, one per schema —
    // exactly how the DSOS store subscribes to the Darshan tag.
    let vmstat_tap = BufferSink::new();
    let meminfo_tap = BufferSink::new();
    net.l2().subscribe("vmstat", vmstat_tap.clone());
    net.l2().subscribe("meminfo", meminfo_tap.clone());

    // One ldmsd sampling loop per node: every 10 virtual seconds over a
    // 10-minute window.
    let start = Epoch::from_secs(1_655_300_000);
    let end = start + SimDuration::from_secs(600);
    for (i, node) in nodes.iter().enumerate() {
        let vmstat = VmstatSampler {
            seed: 100 + i as u64,
        };
        let meminfo = MeminfoSampler {
            mem_total: 64 << 30,
            seed: 200 + i as u64,
        };
        for set in sample_window(&vmstat, node, start, end, SimDuration::from_secs(10)) {
            publish_metric_set(&net, &set);
        }
        for set in sample_window(&meminfo, node, start, end, SimDuration::from_secs(10)) {
            publish_metric_set(&net, &set);
        }
    }

    println!(
        "collected {} vmstat and {} meminfo sets across {} nodes\n",
        vmstat_tap.len(),
        meminfo_tap.len(),
        nodes.len()
    );

    // Render one node's cpu_load series the way a Grafana panel would.
    for node in &nodes {
        let series: Vec<f64> = vmstat_tap
            .snapshot()
            .iter()
            .filter(|m| m.producer.as_ref() == node.as_str())
            .filter_map(|m| {
                json::parse(&m.data)
                    .ok()?
                    .get("metrics")?
                    .get("cpu_load")?
                    .as_f64()
            })
            .collect();
        println!("{node} cpu_load |{}|", sparkline(&series));
    }
    println!(
        "\nEvery sample carries an absolute timestamp and traversed the same\n\
         node→L1→L2 aggregation as the Darshan stream, so I/O events and system\n\
         telemetry line up on one time axis — the correlation the paper builds\n\
         the integration for (see also `repro-bench --bin correlate`)."
    );
}
