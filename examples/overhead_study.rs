//! Overhead study: what does attaching the connector cost, and what
//! fixes it when it costs too much?
//!
//! Reproduces the paper's Table IIc mechanism on a scaled-down HMMER
//! (`hmmbuild`): millions→thousands of tiny stdio events from the
//! master rank, where JSON formatting dominates. Then applies the two
//! mitigations: the no-format ablation (paper: 0.37 % overhead) and
//! the every-n-th-event sampling the paper proposes as future work.
//!
//! Run with: `cargo run --release -p repro-suite --example overhead_study`

use repro_suite::apps::experiment::{run_job, Instrumentation, RunSpec};
use repro_suite::apps::platform::FsChoice;
use repro_suite::apps::workloads::Hmmer;
use repro_suite::connector::{ConnectorConfig, FormatMode};

fn main() {
    let mut app = Hmmer::tiny();
    app.families = 200;
    app.sequences = 8_000;

    let baseline = run_job(
        &app,
        &RunSpec::calm(FsChoice::Nfs, Instrumentation::DarshanOnly),
    );
    println!(
        "baseline (Darshan only):        {:>8.2} s, {} messages",
        baseline.runtime_s, baseline.messages
    );

    let report = |label: &str, cfg: ConnectorConfig| {
        let r = run_job(
            &app,
            &RunSpec::calm(FsChoice::Nfs, Instrumentation::Connector(cfg)),
        );
        let overhead = (r.runtime_s - baseline.runtime_s) / baseline.runtime_s * 100.0;
        println!(
            "{label:<32}{:>8.2} s, {} messages, overhead {overhead:+.1}%",
            r.runtime_s, r.messages
        );
    };

    report("connector (full JSON):", ConnectorConfig::default());
    report(
        "connector (no-format ablation):",
        ConnectorConfig {
            format_mode: FormatMode::NoFormat,
            ..Default::default()
        },
    );
    for every in [10u64, 100] {
        report(
            &format!("connector (sample every {every}):"),
            ConnectorConfig {
                sample_every: every,
                ..Default::default()
            },
        );
    }
    println!(
        "\npaper reference: HMMER overhead 276.86% (NFS) / 1276.67% (Lustre) with\n\
         full formatting, 0.37% with formatting disabled — the cost is the\n\
         integer-to-string conversion, not LDMS."
    );
}
