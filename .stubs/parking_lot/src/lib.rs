//! Minimal offline stand-in for `parking_lot`, delegating to `std::sync`
//! with poison recovery (parking_lot locks are not poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Self(std::sync::Mutex::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        Self(std::sync::RwLock::new(t))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}
