//! Empty offline stand-in for `criterion`. Bench targets are not built
//! by `cargo build`/`cargo test`; this exists only so dependency
//! resolution succeeds offline.
