//! Minimal offline stand-in for `criterion`, API-compatible with the
//! subset the `crates/bench/benches/*` targets use: `Criterion`,
//! `BenchmarkGroup` (`sample_size` / `bench_function` /
//! `bench_with_input` / `finish`), `Bencher` (`iter` /
//! `iter_batched_ref`), `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Each routine is warmed once and timed over a small fixed iteration
//! count with `std::time::Instant`, printing a single mean-time line —
//! enough for `cargo bench` to smoke-run and for
//! `cargo clippy --all-targets` to build the bench targets offline,
//! with no statistics, plotting, or CLI surface.

use std::fmt::Display;
use std::time::Instant;

/// How `iter_batched*` amortizes setup; only the variants the benches
/// name. The stub re-runs setup per batch regardless of the hint.
pub enum BatchSize {
    /// Small per-iteration input: large batches in real criterion.
    SmallInput,
    /// Large per-iteration input: small batches in real criterion.
    LargeInput,
    /// Setup re-run before every routine call.
    PerIteration,
}

/// A `group/function/parameter` benchmark label.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Labels the benchmark `<function_name>/<parameter>`.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Labels the benchmark with the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything `bench_function` accepts as a label.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        report(self.iters, start);
    }

    /// Times `routine` against a fresh `setup()` value each iteration.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        std::hint::black_box(routine(&mut input)); // warm-up, untimed
        let mut elapsed = std::time::Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            elapsed += start.elapsed();
            drop(input);
        }
        let mean_ns = elapsed.as_nanos() / u128::from(self.iters.max(1));
        println!("    time: ~{mean_ns} ns/iter ({} iters)", self.iters);
    }
}

fn report(iters: u64, start: Instant) {
    let mean_ns = start.elapsed().as_nanos() / u128::from(iters.max(1));
    println!("    time: ~{mean_ns} ns/iter ({iters} iters)");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Scales the stub's fixed iteration count (real criterion's
    /// statistical sample count has no offline equivalent).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Runs one benchmark routine.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("{}/{}", self.name, id.into_id());
        f(&mut Bencher { iters: self.iters });
        self
    }

    /// Runs one benchmark routine against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("{}/{}", self.name, id.id);
        f(&mut Bencher { iters: self.iters }, input);
        self
    }

    /// Ends the group (no-op offline).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            iters: 30,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's simple
/// `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
