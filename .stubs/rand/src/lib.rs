//! Minimal offline stand-in for `rand`: `SmallRng` + the `gen_range`
//! call shapes the workspace uses (splitmix64 underneath).

use std::ops::{Range, RangeInclusive};

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub trait Rng: RngCore + Sized {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + Sized> Rng for T {}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * rng.next_f64()
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample(self, rng: &mut dyn RngCore) -> u64 {
        self.start + rng.next_u64() % (self.end - self.start).max(1)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample(self, rng: &mut dyn RngCore) -> usize {
        self.start + (rng.next_u64() as usize) % (self.end - self.start).max(1)
    }
}

pub mod rngs {
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl super::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl super::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
