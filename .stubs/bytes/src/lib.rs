//! Minimal offline stand-in for `bytes`: big-endian `Buf`/`BufMut` over
//! plain vectors, covering the calls the Darshan log codec makes.

/// Growable write buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            buf: self.buf,
            pos: 0,
        }
    }
}

/// Read cursor over an owned byte buffer (subset of `bytes::Bytes`).
#[derive(Debug, Default, Clone)]
pub struct Bytes {
    buf: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            buf: data.to_vec(),
            pos: 0,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.buf[self.pos..].to_vec()
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }
    fn get_f64(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.buf[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

impl Bytes {
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes {
            buf: self.buf[self.pos..self.pos + len].to_vec(),
            pos: 0,
        };
        self.pos += len;
        out
    }
}
