//! Offline stand-in for `proptest`, implementing the subset of the API
//! this repository's property tests use: the `proptest!` macro, value
//! strategies (`any`, ranges, tuples, regex-ish string patterns,
//! `prop_oneof!`, `Just`, `prop_map`, `prop_recursive`,
//! `prop::collection::{vec, btree_map}`, `prop::num::f64::NORMAL`) and
//! the `prop_assert*` macros. Generation is a seeded splitmix64 stream
//! keyed by the case index, so every run of a test explores the same
//! deterministic sequence of inputs and failures reproduce exactly.
//! There is no shrinking: the failing case index is reported instead.

/// Deterministic generator handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fresh stream for one test case. The constant offset keeps the
    /// zero case away from the all-zero state.
    pub fn for_case(case: u64) -> Self {
        Self {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// splitmix64 step.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform usize in `[lo, hi)` (empty range yields `lo`).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod strategy {
    use super::TestRng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A value generator. Unlike real proptest there is no shrinking,
    /// so a strategy is just a cloneable recipe for sampling values.
    pub trait Strategy: Clone {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy by applying `recurse` `depth`
        /// times, starting from `self` as the leaf. Real proptest's
        /// size hints (`_desired_size`, `_expected_branch_size`) are
        /// accepted and ignored; collection strategies bound growth.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let mut current = self.boxed();
            for _ in 0..depth {
                current = recurse(current).boxed();
            }
            current
        }

        /// Type-erases the strategy. Cloneable, so it doubles as real
        /// proptest's `BoxedStrategy` in `prop_recursive` closures.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy {
                sample: Arc::new(move |rng| s.generate(rng)),
            }
        }
    }

    /// Cloneable type-erased strategy.
    pub struct BoxedStrategy<T> {
        sample: Arc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self {
                sample: Arc::clone(&self.sample),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.sample)(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternatives (the `prop_oneof!` macro).
    pub struct Union<T> {
        arms: Vec<Arc<dyn Fn(&mut TestRng) -> T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Self {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<Arc<dyn Fn(&mut TestRng) -> T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    /// Erases one `prop_oneof!` arm into a sampling closure.
    pub fn union_arm<S>(s: S) -> Arc<dyn Fn(&mut TestRng) -> S::Value>
    where
        S: Strategy + 'static,
    {
        Arc::new(move |rng| s.generate(rng))
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_in(0, self.arms.len());
            (self.arms[i])(rng)
        }
    }

    // --- integer / float ranges -------------------------------------

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    // --- tuples ------------------------------------------------------

    macro_rules! tuple_strategy {
        ($($name:ident: $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    // --- regex-subset string patterns --------------------------------

    /// One generatable pattern element.
    #[derive(Clone)]
    enum Tok {
        /// Fixed character.
        Lit(char),
        /// Choice from an explicit pool.
        Pool(Vec<char>),
    }

    /// The pool backing `.`/`\PC` and negated classes: ASCII
    /// printables plus a few multi-byte characters so string-escaping
    /// paths get exercised.
    fn printable_pool() -> Vec<char> {
        let mut pool: Vec<char> = (0x20u8..0x7F).map(char::from).collect();
        pool.extend(['\t', '\n', 'é', 'ß', '→', '世', '🦀']);
        pool
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Tok {
        let mut negate = false;
        let mut members: Vec<char> = Vec::new();
        if chars.peek() == Some(&'^') {
            negate = true;
            chars.next();
        }
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => break,
                '\\' => {
                    let e = chars.next().expect("dangling escape in class");
                    let lit = match e {
                        'r' => '\r',
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    };
                    members.push(lit);
                    prev = Some(lit);
                }
                '-' if prev.is_some() && chars.peek().is_some() && chars.peek() != Some(&']') => {
                    let hi = chars.next().unwrap();
                    let lo = prev.take().unwrap();
                    for u in (lo as u32 + 1)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(u) {
                            members.push(ch);
                        }
                    }
                }
                other => {
                    members.push(other);
                    prev = Some(other);
                }
            }
        }
        if negate {
            let pool: Vec<char> = printable_pool()
                .into_iter()
                .filter(|c| !members.contains(c))
                .collect();
            Tok::Pool(pool)
        } else {
            Tok::Pool(members)
        }
    }

    /// Parses the regex subset the test-suite uses: literals, classes
    /// (`[a-z_]`, `[^\r]`), `.`/`\PC`, escapes, and the quantifiers
    /// `{n}`, `{n,m}`, `*`, `+`, `?`.
    fn parse_pattern(pat: &str) -> Vec<(Tok, usize, usize)> {
        let mut toks = Vec::new();
        let mut chars = pat.chars().peekable();
        while let Some(c) = chars.next() {
            let tok = match c {
                '[' => parse_class(&mut chars),
                '.' => Tok::Pool(printable_pool()),
                '\\' => match chars.next().expect("dangling escape") {
                    'P' | 'p' => {
                        // `\PC`: any non-control character.
                        let cat = chars.next().expect("escape category");
                        assert_eq!(cat, 'C', "only the C (control) category is supported");
                        Tok::Pool(printable_pool())
                    }
                    'r' => Tok::Lit('\r'),
                    'n' => Tok::Lit('\n'),
                    't' => Tok::Lit('\t'),
                    other => Tok::Lit(other),
                },
                other => Tok::Lit(other),
            };
            // Quantifier, if any.
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for q in chars.by_ref() {
                        if q == '}' {
                            break;
                        }
                        spec.push(q);
                    }
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n: usize = spec.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 24)
                }
                Some('+') => {
                    chars.next();
                    (1, 24)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            toks.push((tok, min, max));
        }
        toks
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for (tok, min, max) in parse_pattern(self) {
                let n = rng.usize_in(min, max + 1);
                for _ in 0..n {
                    match &tok {
                        Tok::Lit(c) => out.push(*c),
                        Tok::Pool(pool) => {
                            assert!(!pool.is_empty(), "empty character class");
                            out.push(pool[rng.usize_in(0, pool.len())]);
                        }
                    }
                }
            }
            out
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            // Finite floats over a wide dynamic range.
            let mantissa = rng.unit_f64() * 2.0 - 1.0;
            let exp = (rng.below(601) as i32 - 300) as f64;
            mantissa * exp.exp2()
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
        }
    }

    impl<T: Arbitrary> Arbitrary for Vec<T> {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            let n = rng.usize_in(0, 65);
            (0..n).map(|_| T::arbitrary_value(rng)).collect()
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(T::arbitrary_value(rng))
            }
        }
    }

    /// Strategy form of [`Arbitrary`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Self {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()`: the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Accepted size specifications for collection strategies.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        /// Exclusive upper bound.
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.min, self.size.max);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(elem, len)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Key collisions shrink the map below the target size,
            // matching real proptest's behaviour for small key spaces.
            let n = rng.usize_in(self.size.min, self.size.max);
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    /// `prop::collection::btree_map(key, value, len)`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

pub mod num {
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::TestRng;

        /// Strategy for normal (finite, non-zero, non-subnormal) f64s.
        #[derive(Clone, Copy)]
        pub struct NormalStrategy;

        pub const NORMAL: NormalStrategy = NormalStrategy;

        impl Strategy for NormalStrategy {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                // Mantissa in ±[1, 2), exponent well inside the normal
                // range: always a normal float.
                let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                let mantissa = 1.0 + rng.unit_f64();
                let exp = (rng.below(561) as i32 - 280) as f64;
                sign * mantissa * exp.exp2()
            }
        }
    }
}

pub mod test_runner {
    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of real proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Runs each embedded test function over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                for case in 0..u64::from(cfg.cases) {
                    let mut rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let run = move || { $body };
                    if let Err(panic) =
                        ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run))
                    {
                        eprintln!(
                            "proptest case {case} of {} failed (deterministic; rerun reproduces)",
                            cfg.cases
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Asserting macros: panic-based (there is no shrinker to feed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_arm($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn patterns_match_their_class(s in "[a-z_]{1,8}") {
            prop_assert!(!s.is_empty() && s.chars().count() <= 8);
            prop_assert!(s.chars().all(|c| c == '_' || c.is_ascii_lowercase()));
        }

        #[test]
        fn normal_floats_are_normal(f in prop::num::f64::NORMAL) {
            prop_assert!(f.is_normal());
        }
    }
}
