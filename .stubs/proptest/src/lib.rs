//! Empty offline stand-in for `proptest`. The `props` integration-test
//! target does not compile against this stub (expected offline); every
//! other target builds and runs.
