//! Minimal offline stand-in for `crossbeam`, covering the scoped-thread
//! API the workspace uses, on top of `std::thread::scope`.

pub mod thread {
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.0.spawn(move || f(()))
        }
    }

    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope resumes a child panic on the caller after
        // joining; crossbeam returns it as Err. Catch to match.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope(s)))
        }))
    }
}
